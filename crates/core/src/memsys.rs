//! The pluggable secondary memory system behind the L1 banks.
//!
//! [`MemSys`] is the core-side adapter for
//! [`CoreConfig::mem_backend`](crate::CoreConfig): the perfect-L2
//! variant answers every fill after a flat latency and holds no state
//! at all, while the NUCA variant owns a
//! [`trips_mem::SecondarySystem`] and carries DT MSHR fills, IT
//! I-cache refills, and commit-time store writebacks as [`MemReq`]
//! packets over the 4×10 OCN.
//!
//! The backend is **timing-only**: load values are read from the
//! core's memory image at execute time (with LSQ forwarding overlaid),
//! and committed stores write that image directly, so the secondary
//! system only decides *when* a fill completes or a store-commit
//! acknowledgement returns — never what a load observes. That is the
//! same timing/data split the NUCA model itself uses (banks hold tags
//! only), and it is why the two backends are architecturally
//! interchangeable (see DESIGN.md §5d for the determinism argument).
//!
//! Per client (each DT and each IT owns one OCN port) the adapter
//! keeps a FIFO of requests the network has not yet accepted and a
//! FIFO of completions the tile has not yet consumed, supporting any
//! number of outstanding requests per client. Arbitration is
//! deterministic: pending queues are drained in fixed client order
//! every tick, and the OCN itself resolves contention with its own
//! deterministic round-robin.

use std::collections::VecDeque;

use trips_mem::{MemReq, SecondarySystem};

use crate::config::{CoreConfig, MemBackend, NUM_DTS, NUM_ITS};
use crate::stats::MemSysStats;
use crate::trace::{TraceKind, Tracer};

/// Clients of the secondary system, in deterministic arbitration
/// order: the four DTs, then the five ITs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemClient {
    /// Data tile `0..4`.
    Dt(u8),
    /// Instruction tile `0..5`.
    It(u8),
}

const NUM_CLIENTS: usize = NUM_DTS + NUM_ITS;

impl MemClient {
    fn index(self) -> usize {
        match self {
            MemClient::Dt(d) => d as usize,
            MemClient::It(i) => NUM_DTS + i as usize,
        }
    }

    fn of_index(i: usize) -> MemClient {
        if i < NUM_DTS {
            MemClient::Dt(i as u8)
        } else {
            MemClient::It((i - NUM_DTS) as u8)
        }
    }

    /// The client's OCN port: DTs use ports 0..4 on the west edge, ITs
    /// ports 10..15 on the east edge (the prototype gives each L1 bank
    /// a private OCN link, §3.6).
    fn port(self) -> usize {
        match self {
            MemClient::Dt(d) => d as usize,
            MemClient::It(i) => 10 + i as usize,
        }
    }
}

/// Request-id bit marking a line fill; store writebacks carry the
/// committing frame index instead, so a response is self-describing.
const ID_FILL: u64 = 1 << 63;

/// A completion delivered back to a client tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemEvent {
    /// A requested line arrived (fill the MSHR / refill chunk).
    Fill {
        /// The 64-byte line index (`addr >> 6`).
        line: u64,
    },
    /// A commit-time store writeback was acknowledged (the ESN's role
    /// in the hardware: L2-side store completion feeding commit).
    StoreAck {
        /// The committing frame the writeback belonged to.
        frame: u8,
    },
}

/// How a fill request will complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillPath {
    /// Perfect backend: the fill completes at this cycle.
    At(u64),
    /// NUCA backend: the fill completes via a later
    /// [`MemEvent::Fill`].
    Queued,
}

/// State of the NUCA backend.
struct Nuca {
    sys: SecondarySystem,
    /// Per-client requests the network has not accepted yet.
    pending: Vec<VecDeque<MemReq>>,
    /// Per-client completions the tile has not consumed yet.
    ready: Vec<VecDeque<MemEvent>>,
    /// Per-client accepted-but-undelivered request count (the
    /// conservation ledger: pending + in-system + ready).
    outstanding: Vec<u64>,
    /// Fill-request issue times, for the miss-latency histogram:
    /// `(client, line, requested_at)`.
    sent_at: Vec<(usize, u64, u64)>,
    /// Requests accepted into the OCN.
    issued: u64,
    /// Responses popped out of the OCN.
    delivered: u64,
    stats: MemSysStats,
}

/// The secondary memory system in either backend configuration.
pub(crate) struct MemSys {
    imp: Imp,
}

enum Imp {
    Perfect { latency: u64 },
    Nuca(Box<Nuca>),
}

impl MemSys {
    /// Builds the backend selected by `cfg.mem_backend`, installing
    /// the fault plan's OCN stalls when one is configured.
    pub(crate) fn new(cfg: &CoreConfig) -> MemSys {
        let imp = match &cfg.mem_backend {
            MemBackend::PerfectL2 { latency } => Imp::Perfect { latency: *latency },
            MemBackend::Nuca(mc) => {
                let mut sys = SecondarySystem::new(mc.clone());
                if let Some(plan) = &cfg.faults {
                    sys.set_ocn_fault(plan.ocn_fault().as_ref());
                }
                Imp::Nuca(Box::new(Nuca {
                    sys,
                    pending: vec![VecDeque::new(); NUM_CLIENTS],
                    ready: vec![VecDeque::new(); NUM_CLIENTS],
                    outstanding: vec![0; NUM_CLIENTS],
                    sent_at: Vec::new(),
                    issued: 0,
                    delivered: 0,
                    stats: MemSysStats::default(),
                }))
            }
        };
        MemSys { imp }
    }

    /// A D-side line fill for DT `dt` (line = `ea >> 6`).
    pub(crate) fn dside_fill(&mut self, now: u64, dt: u8, line: u64) -> FillPath {
        self.fill(now, MemClient::Dt(dt), line)
    }

    /// An I-side line fill for IT `it` (`addr` is line-aligned).
    pub(crate) fn iside_fill(&mut self, now: u64, it: u8, addr: u64) -> FillPath {
        self.fill(now, MemClient::It(it), addr >> 6)
    }

    fn fill(&mut self, now: u64, client: MemClient, line: u64) -> FillPath {
        match &mut self.imp {
            Imp::Perfect { latency } => FillPath::At(now + *latency),
            Imp::Nuca(n) => {
                let c = client.index();
                n.pending[c].push_back(MemReq::read_line(ID_FILL | line, line << 6));
                n.outstanding[c] += 1;
                match client {
                    MemClient::Dt(_) => n.stats.dside_fills += 1,
                    MemClient::It(_) => n.stats.iside_fills += 1,
                }
                FillPath::Queued
            }
        }
    }

    /// A commit-time store writeback from DT `dt` for frame `frame`
    /// (ESN-style). Returns true when an acknowledgement will follow
    /// as a [`MemEvent::StoreAck`]; the perfect backend acknowledges
    /// implicitly and returns false. The line payload is zeros — the
    /// core's memory image is the data authority (timing-only model).
    pub(crate) fn store_write(&mut self, dt: u8, frame: u8, ea: u64) -> bool {
        match &mut self.imp {
            Imp::Perfect { .. } => false,
            Imp::Nuca(n) => {
                let c = MemClient::Dt(dt).index();
                n.pending[c].push_back(MemReq::write_line(u64::from(frame), ea, [0; 64]));
                n.outstanding[c] += 1;
                n.stats.store_writebacks += 1;
                true
            }
        }
    }

    /// Pops the next completion for `client`, if one is ready.
    pub(crate) fn pop_event(&mut self, client: MemClient) -> Option<MemEvent> {
        match &mut self.imp {
            Imp::Perfect { .. } => None,
            Imp::Nuca(n) => {
                let c = client.index();
                let ev = n.ready[c].pop_front();
                if ev.is_some() {
                    n.outstanding[c] -= 1;
                }
                ev
            }
        }
    }

    /// True when `client` has an unconsumed completion (keeps the tile
    /// ticking under clock gating — the event is invisible to the
    /// tile's own `active()` predicate).
    pub(crate) fn has_events(&self, client: MemClient) -> bool {
        match &self.imp {
            Imp::Perfect { .. } => false,
            Imp::Nuca(n) => !n.ready[client.index()].is_empty(),
        }
    }

    /// One cycle, run after the tiles and nets: inject pending
    /// requests in client order, advance the OCN and banks, and steer
    /// arrived responses back to their client queues (consumed by the
    /// tiles next cycle).
    pub(crate) fn tick(&mut self, now: u64, tracer: &mut Tracer) {
        let Imp::Nuca(n) = &mut self.imp else {
            return;
        };
        if n.outstanding.iter().all(|&o| o == 0) {
            return;
        }
        for c in 0..NUM_CLIENTS {
            let port = MemClient::of_index(c).port();
            while let Some(req) = n.pending[c].front() {
                let is_fill = req.id & ID_FILL != 0;
                let addr = req.addr;
                if n.sys.request(now, port, req.clone()) {
                    n.pending[c].pop_front();
                    n.issued += 1;
                    if is_fill {
                        n.sent_at.push((c, addr >> 6, now));
                    }
                    tracer.record(now, || TraceKind::OcnInject {
                        port: port as u8,
                        addr,
                        write: !is_fill,
                    });
                } else {
                    n.stats.inject_stalls += 1;
                    break;
                }
            }
        }
        n.sys.tick(now);
        for c in 0..NUM_CLIENTS {
            let port = MemClient::of_index(c).port();
            while let Some(resp) = n.sys.pop_response(now, port) {
                n.delivered += 1;
                let is_fill = resp.id & ID_FILL != 0;
                tracer.record(now, || TraceKind::OcnEject {
                    port: port as u8,
                    addr: resp.addr,
                    write: !is_fill,
                });
                if is_fill {
                    let line = resp.addr >> 6;
                    if let Some(k) = n.sent_at.iter().position(|&(sc, sl, _)| sc == c && sl == line)
                    {
                        let (_, _, at) = n.sent_at.swap_remove(k);
                        // 8-cycle buckets: a NUCA round trip is tens of
                        // cycles, far past the histogram's 0..31 range.
                        n.stats.fill_latency.record((now - at) / 8);
                    }
                    n.ready[c].push_back(MemEvent::Fill { line });
                } else {
                    n.ready[c].push_back(MemEvent::StoreAck { frame: resp.id as u8 });
                }
            }
        }
        let total: u64 = n.outstanding.iter().sum();
        n.stats.peak_outstanding = n.stats.peak_outstanding.max(total);
    }

    /// True when nothing is pending anywhere: no unaccepted request,
    /// nothing inside the OCN or banks, no unconsumed completion. The
    /// complement of the work [`MemSys::tick`] could still do, so
    /// "quiesced" and "nothing to tick" can never disagree.
    pub(crate) fn quiet(&self) -> bool {
        match &self.imp {
            Imp::Perfect { .. } => true,
            Imp::Nuca(n) => n.outstanding.iter().all(|&o| o == 0),
        }
    }

    /// A run-end statistics snapshot (`None` for the perfect backend,
    /// keeping `CoreStats` bit-identical to the pre-backend model).
    pub(crate) fn stats_snapshot(&self) -> Option<MemSysStats> {
        match &self.imp {
            Imp::Perfect { .. } => None,
            Imp::Nuca(n) => {
                let mut s = n.stats.clone();
                s.ocn = n.sys.ocn_stats();
                s.dram_accesses = n.sys.dram_accesses;
                let (hits, misses): (Vec<u64>, Vec<u64>) = n.sys.bank_stats().into_iter().unzip();
                s.bank_hits = hits;
                s.bank_misses = misses;
                s.bank_peak_occupancy = n.sys.bank_peaks().to_vec();
                Some(s)
            }
        }
    }

    /// Request/response conservation: every request a client handed
    /// over is exactly one of pending, inside the system, or ready —
    /// and the OCN's own packet accounting balances.
    ///
    /// # Errors
    ///
    /// A description of the first violated accounting equation.
    pub(crate) fn audit(&self) -> Result<(), String> {
        let Imp::Nuca(n) = &self.imp else {
            return Ok(());
        };
        n.sys.audit().map_err(|e| format!("OCN: {e}"))?;
        let in_system = n.sys.in_system() as u64;
        if n.issued - n.delivered != in_system {
            return Err(format!(
                "memsys conservation broken: issued {} - delivered {} != in-system {}",
                n.issued, n.delivered, in_system
            ));
        }
        let ledger: u64 = n.outstanding.iter().sum();
        let held: u64 = n.pending.iter().map(|q| q.len() as u64).sum::<u64>()
            + in_system
            + n.ready.iter().map(|q| q.len() as u64).sum::<u64>();
        if ledger != held {
            return Err(format!("memsys ledger {ledger} != pending + in-system + ready {held}"));
        }
        Ok(())
    }

    /// Queued work for the hang diagnoser (`None` when quiet).
    pub(crate) fn diag(&self) -> Option<String> {
        let Imp::Nuca(n) = &self.imp else {
            return None;
        };
        if self.quiet() {
            return None;
        }
        let pending: usize = n.pending.iter().map(VecDeque::len).sum();
        let ready: usize = n.ready.iter().map(VecDeque::len).sum();
        Some(format!(
            "{pending} request(s) awaiting injection, {} in the OCN/banks, \
             {ready} completion(s) unconsumed",
            n.sys.in_system()
        ))
    }
}
