//! Protocol invariants, checked every tick under fuzzing.
//!
//! The paper's §4 protocols are distributed state machines; this
//! module states the properties they must hold at *every* cycle, under
//! *any* message timing the micronets can legally produce. The fuzz
//! harness (`protofuzz`) runs them each tick with
//! [`CoreConfig::check_invariants`](crate::CoreConfig) on; a violation
//! aborts the run with [`SimError::Invariant`](crate::SimError)
//! carrying the failing cycle and a description.
//!
//! The catalogue (each follows from a protocol description in §3–§4;
//! DESIGN.md gives the full derivations):
//!
//! * **GT frame lifecycle** — the age order holds each in-flight frame
//!   exactly once; a frame reaches `Complete` only with all register
//!   writes done, all stores done, and its branch resolved (§4.4's
//!   three completion inputs); commit commands go out in age order;
//!   commit acks only exist for frames whose commit command went out.
//! * **Cross-tile generation bound** — no tile holds an *active* frame
//!   at a generation newer than the GT's, and a tile frame active at
//!   the GT's current generation implies the GT slot is not free:
//!   generations are born at the GT and travel outward (§4.3 flush
//!   gens), so a tile ahead of the GT means a forged or corrupted
//!   message.
//! * **DT / LSQ sanity** — every load/store record carries a legal
//!   LSQ id (< 32, the block's LSID space); arrived-store bits and
//!   held stores stay inside the block's store mask once the mask is
//!   known (§4.4 store-completion counting); the occupancy counter
//!   equals the live records (a leak here is an operand created but
//!   never consumed).
//! * **OPN conservation** — per mesh, `injected = ejected +
//!   in-flight`, and the routers' queue occupancy equals the in-flight
//!   count: the fabric neither drops nor duplicates operands.
//! * **Secondary-system conservation** — under the NUCA backend every
//!   request a tile handed to the adapter is exactly one of: awaiting
//!   injection, inside the OCN/banks, or a completion awaiting its
//!   tile; and the OCN's own packet accounting balances. The network
//!   may delay a fill or a store acknowledgement arbitrarily but can
//!   never drop or duplicate one.
//!
//! The remaining tentpole properties are checked at run boundaries
//! rather than per tick: *flush fully drains a frame's in-flight
//! state* and *no operand is created but never consumed* both reduce
//! to the core quiescing after halt — [`Processor::run`] with
//! invariants on drains the halted core and requires
//! [`Processor::quiesced`]; any leaked operand, stuck wave, or
//! undrained queue keeps a network or tile active and fails the run.

use std::fmt;

use crate::proc::Processor;

/// A violated protocol invariant: where and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle at which the check failed.
    pub cycle: u64,
    /// Human-readable description of the violated property.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol invariant violated at cycle {}: {}", self.cycle, self.detail)
    }
}

/// Runs the full per-tick invariant suite against the processor's
/// current state.
///
/// # Errors
///
/// The first violated invariant, with the current cycle.
pub fn check(p: &Processor) -> Result<(), InvariantViolation> {
    check_detail(p).map_err(|detail| InvariantViolation { cycle: p.cycle, detail })
}

fn check_detail(p: &Processor) -> Result<(), String> {
    p.gt.audit()?;
    let gens = p.gt.slot_gens();
    let free = p.gt.slot_free();
    for rt in &p.rts {
        rt.audit(&gens, &free)?;
    }
    for et in &p.ets {
        et.audit(&gens, &free)?;
    }
    for dt in &p.dts {
        dt.audit(&gens, &free)?;
    }
    for (n, m) in p.nets.opn.iter().enumerate() {
        m.audit().map_err(|e| format!("OPN{n}: {e}"))?;
    }
    p.memsys.audit()?;
    Ok(())
}
