//! The per-phase tick profiler.
//!
//! ROADMAP item 1 is a wall-clock budget problem: a busy cycle costs
//! single-digit microseconds and the question is always *which phase
//! of the tick* is eating them. The [`TickProfile`] answers it the
//! same way the [`Tracer`](crate::trace::Tracer) answers protocol
//! questions: an instrument threaded through [`Processor::tick`] that
//! is **zero-cost when disabled** — every phase boundary is one branch
//! on a bool ([`TickProfile::begin`] returns `None` and
//! [`TickProfile::end`] does nothing), and the `Instant` reads happen
//! only when profiling is on.
//!
//! Enabled (via [`Processor::enable_profiling`]), it accumulates
//! host-nanoseconds and invocation counts per [`TickPhase`] — the
//! activity scan, the GT's chain-drain / frame-walk / fetch-FSM
//! sub-phases, each other tile kind as a group, the micronets, and the
//! memory system — and renders the totals as a table
//! ([`TickProfile::report`]) or JSON ([`TickProfile::json`], written
//! by `simperf --profile` as `BENCH_tickprofile.json`). Profiled runs
//! are architecturally identical to unprofiled ones (the instrument
//! only reads the host clock); wall-clock measurements are taken on
//! separate unprofiled runs so the `Instant` overhead never pollutes
//! the reported throughput.
//!
//! [`Processor::tick`]: crate::Processor::tick
//! [`Processor::enable_profiling`]: crate::Processor::enable_profiling

use std::fmt::Write as _;
use std::time::Instant;

/// Phases of one simulated cycle, in tick order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPhase {
    /// The activity scan (`scan_activity`), including epoch-skip
    /// decisions.
    Scan,
    /// GT: draining the status/branch/refill chain heads.
    GtChains,
    /// GT: the in-flight frame walk (completion, commit, dealloc).
    GtFrames,
    /// GT: the fetch state machine.
    GtFetch,
    /// All instruction tiles.
    It,
    /// All register tiles.
    Rt,
    /// All execution tiles.
    Et,
    /// All data tiles.
    Dt,
    /// The micronetworks (`Nets::tick`).
    Nets,
    /// The secondary memory system.
    MemSys,
}

/// Number of [`TickPhase`] variants.
pub const NUM_PHASES: usize = 10;

impl TickPhase {
    /// Every phase, in tick order.
    pub const ALL: [TickPhase; NUM_PHASES] = [
        TickPhase::Scan,
        TickPhase::GtChains,
        TickPhase::GtFrames,
        TickPhase::GtFetch,
        TickPhase::It,
        TickPhase::Rt,
        TickPhase::Et,
        TickPhase::Dt,
        TickPhase::Nets,
        TickPhase::MemSys,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            TickPhase::Scan => "scan",
            TickPhase::GtChains => "gt_chains",
            TickPhase::GtFrames => "gt_frames",
            TickPhase::GtFetch => "gt_fetch",
            TickPhase::It => "it",
            TickPhase::Rt => "rt",
            TickPhase::Et => "et",
            TickPhase::Dt => "dt",
            TickPhase::Nets => "nets",
            TickPhase::MemSys => "memsys",
        }
    }

    fn index(self) -> usize {
        match self {
            TickPhase::Scan => 0,
            TickPhase::GtChains => 1,
            TickPhase::GtFrames => 2,
            TickPhase::GtFetch => 3,
            TickPhase::It => 4,
            TickPhase::Rt => 5,
            TickPhase::Et => 6,
            TickPhase::Dt => 7,
            TickPhase::Nets => 8,
            TickPhase::MemSys => 9,
        }
    }
}

/// Accumulated cost of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAcc {
    /// Total host nanoseconds spent in the phase.
    pub ns: u64,
    /// Times the phase ran.
    pub calls: u64,
}

/// Accumulated host time per tick phase (see the module docs).
#[derive(Debug, Clone)]
pub struct TickProfile {
    enabled: bool,
    acc: [PhaseAcc; NUM_PHASES],
}

impl TickProfile {
    /// A profiler that records nothing (the default).
    pub fn disabled() -> TickProfile {
        TickProfile { enabled: false, acc: [PhaseAcc::default(); NUM_PHASES] }
    }

    /// A recording profiler.
    pub fn enabled() -> TickProfile {
        TickProfile { enabled: true, acc: [PhaseAcc::default(); NUM_PHASES] }
    }

    /// Whether the profiler is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops accumulated counts, keeping the enabled state.
    pub fn clear(&mut self) {
        self.acc = [PhaseAcc::default(); NUM_PHASES];
    }

    /// Marks a phase start: `None` (free) when disabled, the host
    /// clock when recording. Pass the token to [`TickProfile::end`].
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Books the time since `begin` against `phase` (no-op for a
    /// `None` token).
    #[inline]
    pub fn end(&mut self, phase: TickPhase, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.push(phase, t0);
        }
    }

    #[inline(never)]
    fn push(&mut self, phase: TickPhase, t0: Instant) {
        let a = &mut self.acc[phase.index()];
        a.ns += t0.elapsed().as_nanos() as u64;
        a.calls += 1;
    }

    /// The accumulated cost of `phase`.
    pub fn acc(&self, phase: TickPhase) -> PhaseAcc {
        self.acc[phase.index()]
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.acc.iter().map(|a| a.ns).sum()
    }

    /// Folds another profile's counts into this one (for aggregating
    /// across workloads).
    pub fn merge(&mut self, other: &TickProfile) {
        for (a, b) in self.acc.iter_mut().zip(other.acc.iter()) {
            a.ns += b.ns;
            a.calls += b.calls;
        }
    }

    /// A human-readable per-phase table, phases in tick order.
    pub fn report(&self) -> String {
        let total = self.total_ns().max(1) as f64;
        let mut out = String::new();
        writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>9} {:>7}",
            "phase", "total ms", "calls", "ns/call", "share"
        )
        .unwrap();
        for p in TickPhase::ALL {
            let a = self.acc(p);
            writeln!(
                out,
                "{:<10} {:>12.3} {:>12} {:>9.1} {:>6.1}%",
                p.name(),
                a.ns as f64 / 1e6,
                a.calls,
                a.ns as f64 / (a.calls.max(1) as f64),
                100.0 * a.ns as f64 / total,
            )
            .unwrap();
        }
        out
    }

    /// The per-phase counts as a JSON object (`{"scan": {"ns": ...,
    /// "calls": ...}, ...}`), hand-built like every other benchmark
    /// artifact (the container has no serde).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        for (i, p) in TickPhase::ALL.iter().enumerate() {
            let a = self.acc(*p);
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "\"{}\": {{\"ns\": {}, \"calls\": {}}}", p.name(), a.ns, a.calls).unwrap();
        }
        out.push('}');
        out
    }
}

impl Default for TickProfile {
    fn default() -> TickProfile {
        TickProfile::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = TickProfile::disabled();
        let t = p.begin();
        assert!(t.is_none(), "disabled begin must not read the clock");
        p.end(TickPhase::Scan, t);
        assert_eq!(p.acc(TickPhase::Scan), PhaseAcc::default());
        assert_eq!(p.total_ns(), 0);
    }

    #[test]
    fn enabled_profiler_accumulates_per_phase() {
        let mut p = TickProfile::enabled();
        for _ in 0..3 {
            let t = p.begin();
            assert!(t.is_some());
            p.end(TickPhase::Et, t);
        }
        assert_eq!(p.acc(TickPhase::Et).calls, 3);
        assert_eq!(p.acc(TickPhase::Rt).calls, 0);
        let json = p.json();
        assert!(json.contains("\"et\": {\"ns\": "), "json names phases: {json}");
        let mut other = TickProfile::enabled();
        let t = other.begin();
        other.end(TickPhase::Et, t);
        p.merge(&other);
        assert_eq!(p.acc(TickPhase::Et).calls, 4);
    }
}
