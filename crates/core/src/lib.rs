//! # trips-core — the TRIPS prototype processor core, cycle by cycle
//!
//! This crate is the reproduction's `tsim-proc`: a cycle-level model
//! of the distributed, tiled TRIPS core of *Distributed
//! Microarchitectural Protocols in the TRIPS Prototype Processor*
//! (MICRO-39, 2006). One [`Processor`] contains:
//!
//! * one **GT** (global control tile): block management, the
//!   next-block predictor, fetch, flush, and commit orchestration;
//! * five **IT**s: L1 I-cache banks streaming dispatch beats to their
//!   rows;
//! * four **RT**s: register banks with per-block read/write queues
//!   that forward values between in-flight blocks;
//! * sixteen **ET**s: single-issue dataflow pipelines with 64
//!   reservation stations each;
//! * four **DT**s: L1 D-cache banks with replicated load/store queues
//!   and memory-side dependence predictors;
//!
//! connected by seven micronetworks (OPN, GDN, GCN, GSN, GRN, DSN —
//! and the ESN, whose store-completion role appears when the NUCA
//! secondary backend is selected: see [`MemBackend`]). All
//! traditionally-centralized functions — fetch, execution, flush,
//! commit — run as the paper's distributed protocols over those
//! networks; there is no global state shared between tiles other than
//! the clock.
//!
//! ## Example
//!
//! ```
//! use trips_core::{CoreConfig, Processor};
//! use trips_tasm::{compile, ProgramBuilder, Quality, Opcode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = ProgramBuilder::new();
//! let mut f = p.func("main", 0);
//! let a = f.iconst(40);
//! let b = f.addi(a, 2);
//! let buf = f.iconst(0x10_0000);
//! f.store(Opcode::Sd, buf, 0, b);
//! f.halt();
//! f.finish();
//! let image = compile(&p.finish(), Quality::Hand)?.image;
//!
//! let mut cpu = Processor::new(CoreConfig::prototype());
//! let stats = cpu.run(&image, 100_000)?;
//! assert_eq!(cpu.memory().read_u64(0x10_0000), 42);
//! assert!(stats.blocks_committed >= 1);
//! # Ok(())
//! # }
//! ```

pub mod chip;
mod config;
pub mod critpath;
pub mod diag;
mod dt;
mod et;
mod fault;
mod gt;
pub mod invariants;
mod it;
mod memsys;
pub mod msg;
mod nets;
mod predictor;
mod proc;
pub mod profile;
mod rt;
mod stats;
pub mod trace;

pub use chip::{Chip, ChipConfig, ChipStats};
pub use config::{
    CoreConfig, CoreGeometry, FrameMask, MemBackend, PredictorConfig, StationMask, TileMask,
    ET_COLS, ET_ROWS, MAX_FRAMES, NUM_DTS, NUM_FRAMES, NUM_ITS, NUM_RTS, RS_PER_FRAME,
};
pub use critpath::{Cat, CritBreakdown, CritPath, CATS, NUM_CATS};
pub use diag::{FrameDiag, HangReport, NetDiag, TileDiag};
pub use fault::{ChainDelay, FaultPlan, LinkFault, OcnFault, Ratio};
pub use invariants::InvariantViolation;
pub use predictor::{NextBlockPredictor, Prediction, PredictorCheckpoint};
pub use proc::{GatingStats, Processor, SimError};
pub use profile::{PhaseAcc, TickPhase, TickProfile};
pub use stats::{BlockTiming, CoreStats, Histogram, MemSysStats, ProtocolStats};
pub use trace::{OpnClass, TraceEvent, TraceKind, Tracer};
pub use trips_mem::CohSnapshot;
pub use trips_micronet::FaultPort;
