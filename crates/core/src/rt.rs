//! Register tiles (§3.3).
//!
//! Each RT owns one 32-register bank plus per-frame read and write
//! queues. The queues perform the work register renaming does in a
//! superscalar: a read first searches the write queues of all older
//! in-flight blocks and either forwards the matching write's value,
//! defers until it arrives, or falls through to the architectural
//! file (§4.2). Write arrival drives distributed block-completion
//! detection; commit drains the write queue into the architectural
//! file and joins the commit-acknowledgement daisy chain (§4.4).

use trips_isa::semantics::Tok;
use trips_isa::{ArchReg, ReadInst, Target};

use crate::config::{CoreConfig, CoreGeometry, FrameMask, MAX_FRAMES};
use crate::critpath::{Cat, CritPath, NO_EVENT};
use crate::msg::{EvId, FrameId, GcnMsg, Gen, GsnMsg, OpnPayload, RowMsg, TileId};
use crate::nets::{opn_recv_batch, row_pos_of_col, rt_chain_pos, Nets, OpnOutbox};
use crate::stats::CoreStats;
use crate::trace::{TraceKind, Tracer};

#[derive(Debug, Default, Clone)]
struct WriteEntry {
    reg: Option<ArchReg>,
    declared: bool,
    value: Option<(Tok, EvId)>,
    waiters: Vec<Waiter>,
}

#[derive(Debug, Clone)]
struct Waiter {
    frame: FrameId,
    gen: Gen,
    read: ReadInst,
    ev: EvId,
    /// Resume the older-frame search from the order position just
    /// below this entry's frame if the value turns out to be null.
    resume_below: FrameId,
}

#[derive(Debug, Default)]
struct RtFrame {
    active: bool,
    gen: Gen,
    writes: Vec<WriteEntry>,
    header_done: bool,
    done_sent: bool,
    east_done: bool,
    done_ev: EvId,
    committing: bool,
    commit_cursor: usize,
    commit_done: bool,
    east_ack: bool,
    ack_sent: bool,
}

impl RtFrame {
    /// Reinitializes in place, keeping the write-queue and waiter
    /// allocations (frame churn is hot; `*f = default()` would free
    /// and re-grow every queue on every block).
    fn reset(&mut self, active: bool, gen: Gen, eastmost: bool, done_ev: EvId) {
        self.active = active;
        self.gen = gen;
        for w in &mut self.writes {
            w.reg = None;
            w.declared = false;
            w.value = None;
            w.waiters.clear();
        }
        self.header_done = false;
        self.done_sent = false;
        self.east_done = eastmost;
        self.done_ev = done_ev;
        self.committing = false;
        self.commit_cursor = 0;
        self.commit_done = false;
        self.east_ack = eastmost;
        self.ack_sent = false;
    }
}

/// One register tile.
pub struct RegTile {
    /// Bank index.
    pub bank: u8,
    geom: CoreGeometry,
    regs: Vec<u64>,
    frames: Vec<RtFrame>,
    order: Vec<FrameId>,
    outbox: OpnOutbox,
    /// Bit `fi` set iff `frames[fi]` is active — the dirty-frame work
    /// list for [`RegTile::advance_frames`]. Maintained at every
    /// (de)activation site and audited against the frames, so the
    /// masked walk visits exactly the frames the full scan would act
    /// on. Maintained unconditionally; `cfg.work_lists` only selects
    /// which iteration the tick uses.
    active_mask: FrameMask,
    /// Bit `fi` set iff `frames[fi]` is active, saw its commit wave,
    /// and has not finished draining (`committing && !commit_done`) —
    /// the exact predicate of [`RegTile::busy`]'s old frame scan.
    /// Always maintained and always used: this mask drives the
    /// clock-gating predicate, which must stay exact or the scheduler
    /// sleeps through a commit drain.
    committing_mask: FrameMask,
    /// Frames examined by the advance walk (not in [`CoreStats`]; a
    /// host-side observability counter for the non-vacuousness tests,
    /// like [`GatingStats`](crate::GatingStats)).
    pub(crate) advance_visits: u64,
}

impl RegTile {
    /// A fresh RT for `bank` of a `geom`-sized core.
    pub fn new(bank: u8, geom: CoreGeometry) -> RegTile {
        let mut frames = Vec::with_capacity(geom.frames);
        for _ in 0..geom.frames {
            frames.push(RtFrame {
                writes: vec![WriteEntry::default(); geom.slots_per_rt()],
                ..RtFrame::default()
            });
        }
        RegTile {
            bank,
            geom,
            regs: vec![0; geom.regs_per_bank()],
            frames,
            order: Vec::with_capacity(geom.frames),
            outbox: OpnOutbox::with_capacity(16),
            active_mask: 0,
            committing_mask: 0,
            advance_visits: 0,
        }
    }

    /// Reads an architectural register of this bank (tests/debug).
    pub fn arch_reg(&self, gr: u8) -> u64 {
        self.regs[gr as usize]
    }

    /// True when no frame state or traffic is pending.
    pub fn idle(&self) -> bool {
        self.order.is_empty() && self.outbox.is_empty()
    }

    /// True while a tick can make progress without a new message:
    /// operands queued for injection, or a commit drain in flight
    /// (the write queue empties at `commit_bw` registers per cycle).
    /// Every other state change in this tile is message-triggered and
    /// completed in the tick that consumes the message.
    fn busy(&self) -> bool {
        // `committing_mask` is the old frame scan's predicate
        // (`active && committing && !commit_done`) held as a bitmask,
        // so the busy test — asked by the activity scan every scanned
        // cycle — is two loads instead of an eight-frame walk.
        !self.outbox.is_empty() || self.committing_mask != 0
    }

    /// Clock-gating predicate: internal work pending, or any message
    /// bound for this tile on the GDN header row, GCN, RT status
    /// chain, or OPN.
    pub fn active(&self, nets: &Nets) -> bool {
        self.busy()
            || nets.gdn_rows[0].has_pending_at(row_pos_of_col(self.bank as usize))
            || nets.gcn.has_pending_at(self.geom.gcn_pos(TileId::Rt(self.bank)))
            || nets.gsn_rt.has_pending_at(rt_chain_pos(self.bank as usize))
            || nets.opn_delivered_at(TileId::Rt(self.bank))
    }

    /// The earliest cycle a tick can make progress without a new
    /// message, for the epoch-skipping scheduler. The RT holds no
    /// timers: while busy it progresses every cycle, otherwise only a
    /// message can wake it (the activity scan folds those from the
    /// chains and OPN directly).
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if self.busy() {
            Some(now)
        } else {
            None
        }
    }

    /// Queued work for the hang diagnoser (`None` when idle).
    pub fn diag(&self) -> Option<String> {
        if self.idle() {
            return None;
        }
        let mut parts = Vec::new();
        for &frame in &self.order {
            let f = &self.frames[frame.0 as usize];
            let missing = f.writes.iter().filter(|w| w.declared && w.value.is_none()).count();
            let waiters: usize = f.writes.iter().map(|w| w.waiters.len()).sum();
            parts.push(format!(
                "frame {}: {missing} write(s) missing, {waiters} read(s) deferred",
                frame.0
            ));
        }
        if !self.outbox.is_empty() {
            parts.push(format!("outbox {}", self.outbox.len()));
        }
        Some(parts.join("; "))
    }

    /// RT-side protocol invariants (see [`crate::invariants`]).
    pub(crate) fn audit(&self, gt_gens: &[Gen], gt_free: &[bool]) -> Result<(), String> {
        let mut seen: FrameMask = 0;
        for &f in &self.order {
            let bit = (1 as FrameMask) << f.0;
            if seen & bit != 0 {
                return Err(format!("RT{}: frame {} twice in dispatch order", self.bank, f.0));
            }
            seen |= bit;
            if !self.frames[f.0 as usize].active {
                return Err(format!("RT{}: inactive frame {} in dispatch order", self.bank, f.0));
            }
        }
        for (fi, f) in self.frames.iter().enumerate() {
            if f.active != (self.active_mask & (1 << fi) != 0) {
                return Err(format!(
                    "RT{}: frame {fi} active={} but the work-list mask says {}",
                    self.bank, f.active, !f.active
                ));
            }
            let draining = f.active && f.committing && !f.commit_done;
            if draining != (self.committing_mask & (1 << fi) != 0) {
                return Err(format!(
                    "RT{}: frame {fi} draining={draining} but the committing mask disagrees",
                    self.bank
                ));
            }
            if !f.active {
                continue;
            }
            if f.gen > gt_gens[fi] {
                return Err(format!(
                    "RT{}: frame {fi} active at gen {} but the GT is at gen {}",
                    self.bank, f.gen, gt_gens[fi]
                ));
            }
            if f.gen == gt_gens[fi] && gt_free[fi] {
                return Err(format!(
                    "RT{}: frame {fi} active at the GT's current gen {} but the GT slot is free",
                    self.bank, f.gen
                ));
            }
            if f.commit_cursor > f.writes.len() {
                return Err(format!(
                    "RT{}: frame {fi} commit cursor ran past the write queue",
                    self.bank
                ));
            }
        }
        Ok(())
    }

    /// Activates (or validates) a frame. Only GDN dispatch messages
    /// may establish the age order — OPN traffic can overtake the
    /// dispatch chains, and the write-queue search depends on correct
    /// relative block ages.
    fn ensure_frame(&mut self, frame: FrameId, gen: Gen, from_dispatch: bool) -> bool {
        let f = &mut self.frames[frame.0 as usize];
        if f.gen > gen {
            return false; // stale message for a flushed/retired incarnation
        }
        if !(f.active && f.gen == gen) {
            let eastmost = self.bank as usize == self.geom.num_rts() - 1;
            f.reset(true, gen, eastmost, NO_EVENT);
            self.active_mask |= 1 << frame.0;
            self.committing_mask &= !(1 << frame.0);
        }
        if from_dispatch && !self.order.contains(&frame) {
            self.order.push(frame);
        }
        true
    }

    fn frame_ok(&self, frame: FrameId, gen: Gen) -> bool {
        let f = &self.frames[frame.0 as usize];
        f.active && f.gen == gen
    }

    /// One cycle.
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        let pos = row_pos_of_col(self.bank as usize);

        // Dispatch messages from IT0's row.
        while let Some(msg) = nets.gdn_rows[0].recv(now, pos) {
            match msg {
                RowMsg::Read { frame, gen, read, ev, .. } => {
                    if self.ensure_frame(frame, gen, true) {
                        let dev = crit.event(now, ev, Cat::IFetch, now - crit.time_of(ev));
                        self.resolve_read(now, frame, gen, read, dev, None, crit);
                    }
                }
                RowMsg::Write { frame, gen, slot, write, .. } => {
                    if self.ensure_frame(frame, gen, true) {
                        let w = slot as usize % self.geom.slots_per_rt();
                        let e = &mut self.frames[frame.0 as usize].writes[w];
                        e.reg = Some(write.reg);
                        e.declared = true;
                    }
                }
                RowMsg::HeaderDone { frame, gen, ev } => {
                    if self.ensure_frame(frame, gen, true) {
                        let f = &mut self.frames[frame.0 as usize];
                        f.header_done = true;
                        // Anchor the completion chain to the dispatch
                        // so a block with no register writes still
                        // traces back through fetch on the critical
                        // path.
                        let anchor =
                            crit.event(now, ev, Cat::IFetch, now.saturating_sub(crit.time_of(ev)));
                        f.done_ev = crit.later(f.done_ev, anchor);
                    }
                }
                RowMsg::Inst { .. } | RowMsg::DtMask { .. } => {
                    unreachable!("body traffic on the header row")
                }
            }
        }

        // Write values from the OPN, one batched drain per cycle.
        opn_recv_batch(nets, now, TileId::Rt(self.bank), tracer, |m| {
            let (hops, queued) = (m.hops, m.queued);
            if let OpnPayload::WriteVal { frame, gen, wslot, tok, ev } = m.payload {
                if !self.ensure_frame(frame, gen, false) {
                    return;
                }
                let e_hop =
                    crit.event(now - u64::from(queued), ev, Cat::OpnHop, u64::from(hops) + 1);
                let e_arr = crit.event(now, e_hop, Cat::OpnContention, u64::from(queued));
                self.write_arrived(now, frame, wslot, tok, e_arr, crit);
            }
        });

        // GCN commit/flush.
        while let Some(msg) = nets.gcn.recv(now, self.geom.gcn_pos(TileId::Rt(self.bank))) {
            match msg {
                GcnMsg::Commit { frame, gen } => {
                    if self.frame_ok(frame, gen) {
                        tracer.record(now, || TraceKind::CommitWave {
                            tile: TileId::Rt(self.bank),
                            frame,
                        });
                        self.frames[frame.0 as usize].committing = true;
                        self.committing_mask |= 1 << frame.0;
                    }
                }
                GcnMsg::Flush { mask, gens } => {
                    tracer
                        .record(now, || TraceKind::FlushWave { tile: TileId::Rt(self.bank), mask });
                    self.flush(now, mask, gens, crit);
                }
            }
        }

        // East neighbour's status chain messages.
        while let Some(msg) = nets.gsn_rt.recv(now, rt_chain_pos(self.bank as usize)) {
            match msg {
                // `ensure_frame`, not `frame_ok`: completion hops
                // overlap the flush window, so a neighbour that saw
                // the flush wave (GCN) and the redispatch (GDN) early
                // can legally complete the *next* generation before
                // this bank's flush wave lands. Dropping that
                // future-generation hop would lose it forever (the
                // neighbour's `done_sent` latch never resends) and
                // wedge the daisy chain; fast-forwarding the frame —
                // the same implicit-flush idiom OPN write arrivals
                // use — keeps the hop. Stale generations still drop.
                GsnMsg::WritesDone { frame, gen, ev } if self.ensure_frame(frame, gen, false) => {
                    let f = &mut self.frames[frame.0 as usize];
                    f.east_done = true;
                    f.done_ev = crit.later(f.done_ev, ev);
                }
                GsnMsg::WritesCommitted { frame, gen } if self.frame_ok(frame, gen) => {
                    self.frames[frame.0 as usize].east_ack = true;
                }
                _ => {}
            }
        }

        // Advance completion signalling, commit draining, and acks.
        self.advance_frames(now, cfg, nets, crit, tracer);

        self.outbox.flush(nets, now, TileId::Rt(self.bank), tracer);
        let _ = stats;
    }

    fn advance_frames(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        tracer: &mut Tracer,
    ) {
        let bank = self.bank;
        let my_pos = rt_chain_pos(self.bank as usize);
        let west = my_pos - 1;

        // Commit: drain writes to the architectural file. The file's
        // write ports are shared across frames and must apply blocks
        // in age order — two in-flight commits can both write the
        // same register, and a younger block's drain overtaking an
        // older's would leave the stale older value as the final
        // architectural state. Commit waves arrive in age order on
        // the GCN, so the committing frames form an oldest-first
        // prefix of the dispatch order; walk it with a shared
        // per-tick budget and stall younger drains behind older ones.
        let mut budget = cfg.commit_bw;
        for oi in 0..self.order.len() {
            if budget == 0 {
                break;
            }
            let fi = self.order[oi].0 as usize;
            let f = &mut self.frames[fi];
            if !f.active || !f.committing {
                break;
            }
            if f.commit_done {
                continue;
            }
            while f.commit_cursor < f.writes.len() {
                let e = &f.writes[f.commit_cursor];
                if let (true, Some(reg), Some((Tok::Val(v), _))) = (e.declared, e.reg, e.value) {
                    if budget == 0 {
                        break;
                    }
                    self.regs[self.geom.reg_index(reg.num())] = v;
                    budget -= 1;
                }
                f.commit_cursor += 1;
            }
            if f.commit_cursor >= f.writes.len() {
                f.commit_done = true;
                self.committing_mask &= !(1 << fi);
            }
        }

        // The completion walk only acts on active frames; with work
        // lists on it iterates the active-frame mask (same ascending
        // frame order as the full scan, which skips the inactive
        // rest). The toggle exists so the equivalence suite can
        // compare the two walks bit for bit.
        let all: FrameMask = crate::config::all_frames_mask(self.frames.len());
        let mut pending: FrameMask = if cfg.work_lists { self.active_mask } else { all };
        while pending != 0 {
            let fi = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.advance_visits += 1;
            let frame = FrameId(fi as u8);
            let f = &mut self.frames[fi];
            if !f.active {
                continue;
            }
            // Block-completion detection: all declared writes have
            // values and the east neighbour agrees.
            if !f.done_sent && f.header_done && f.east_done {
                let all = f.writes.iter().all(|w| !w.declared || w.value.is_some());
                if all {
                    f.done_sent = true;
                    tracer.record(now, || TraceKind::WritesDone { rt: bank, frame });
                    let ev = crit.event(now, f.done_ev, Cat::BlockComplete, 1);
                    nets.gsn_rt.send(
                        now,
                        my_pos,
                        west,
                        GsnMsg::WritesDone { frame, gen: f.gen, ev },
                    );
                }
            }
        }

        // Ack + deallocate strictly oldest-first: a frame may leave
        // `order` only from the head. Acking by readiness alone (the
        // old frame-index walk) let a *younger* frame deallocate
        // while an older one still awaited its (delayed) east ack —
        // and once the younger frame's drained value left the write
        // queues, read forwarding fell through to the older frame's
        // still-queued stale entry, resurrecting a superseded value
        // past the architectural file. Same age-order discipline as
        // the commit drain above; under clean timing acks become
        // ready oldest-first anyway, so this only bites (and only
        // delays, never drops, an ack) under fault-plan chain delays.
        while let Some(&frame) = self.order.first() {
            let fi = frame.0 as usize;
            let f = &mut self.frames[fi];
            if !(f.active && f.commit_done && f.east_ack && !f.ack_sent) {
                break;
            }
            f.ack_sent = true;
            tracer.record(now, || TraceKind::CommitAck { tile: TileId::Rt(bank), frame });
            nets.gsn_rt.send(now, my_pos, west, GsnMsg::WritesCommitted { frame, gen: f.gen });
            // Deactivate; the generation bump matches the GT's
            // deallocation bump so stragglers read as stale.
            f.active = false;
            f.gen += 1;
            debug_assert_eq!(self.committing_mask & (1 << fi), 0, "acked while draining");
            self.active_mask &= !(1 << fi);
            self.order.remove(0);
        }
    }

    fn flush(&mut self, now: u64, mask: FrameMask, gens: [Gen; MAX_FRAMES], crit: &mut CritPath) {
        let mut orphaned: Vec<Waiter> = Vec::new();
        for (fi, &new_gen) in gens.iter().enumerate().take(self.frames.len()) {
            if mask & (1 << fi) == 0 {
                continue;
            }
            let f = &mut self.frames[fi];
            if f.active && f.gen < new_gen {
                for w in &mut f.writes {
                    orphaned.append(&mut w.waiters);
                }
                f.reset(false, new_gen, false, 0);
                self.active_mask &= !(1 << fi);
                self.committing_mask &= !(1 << fi);
                self.order.retain(|&x| x.0 as usize != fi);
            } else if !f.active && f.gen < new_gen {
                f.gen = new_gen;
            }
        }
        // Waiters from surviving frames must retry their search (they
        // were waiting on a squashed producer). Waiters from flushed
        // frames are gone with their frames.
        for w in orphaned {
            if self.frame_ok(w.frame, w.gen) {
                let resume = Some(w.resume_below);
                self.resolve_read(now, w.frame, w.gen, w.read, w.ev, resume, crit);
            }
        }
    }

    /// Resolves a read: search older frames' write queues from the
    /// youngest older frame (or from below `resume_below`), forwarding
    /// or deferring; fall through to the architectural file.
    #[allow(clippy::too_many_arguments)]
    fn resolve_read(
        &mut self,
        now: u64,
        frame: FrameId,
        gen: Gen,
        read: ReadInst,
        ev: EvId,
        resume_below: Option<FrameId>,
        crit: &mut CritPath,
    ) {
        let start =
            match resume_below {
                Some(below) => self.order.iter().position(|&x| x == below).unwrap_or(
                    self.order.iter().position(|&x| x == frame).unwrap_or(self.order.len()),
                ),
                None => self
                    .order
                    .iter()
                    .position(|&x| x == frame)
                    .expect("reader frame must be in dispatch order"),
            };
        for oi in (0..start).rev() {
            let older = self.order[oi];
            let of = &mut self.frames[older.0 as usize];
            if !of.active {
                continue;
            }
            let hit = of.writes.iter_mut().find(|w| w.declared && w.reg == Some(read.reg));
            if let Some(entry) = hit {
                match entry.value {
                    None => {
                        entry.waiters.push(Waiter { frame, gen, read, ev, resume_below: older });
                        return;
                    }
                    Some((Tok::Val(v), vev)) => {
                        let pe = crit.later(ev, vev);
                        let dev = crit.event(
                            now,
                            pe,
                            Cat::Other,
                            now.saturating_sub(crit.time_of(pe)).max(1),
                        );
                        self.deliver(frame, gen, read.targets, Tok::Val(v), dev);
                        return;
                    }
                    Some((Tok::Null, _)) => continue, // nullified: older value stands
                }
            }
        }
        // Architectural file.
        let v = self.regs[self.geom.reg_index(read.reg.num())];
        let dev = crit.event(now, ev, Cat::Other, 1);
        self.deliver(frame, gen, read.targets, Tok::Val(v), dev);
    }

    fn write_arrived(
        &mut self,
        now: u64,
        frame: FrameId,
        wslot: u8,
        tok: Tok,
        ev: EvId,
        crit: &mut CritPath,
    ) {
        let fi = frame.0 as usize;
        let slot = wslot as usize % self.geom.slots_per_rt();
        let waiters;
        {
            let f = &mut self.frames[fi];
            let e = &mut f.writes[slot];
            debug_assert!(e.value.is_none(), "double write delivery to W[{wslot}]");
            e.value = Some((tok, ev));
            f.done_ev = crit.later(f.done_ev, ev);
            waiters = std::mem::take(&mut e.waiters);
        }
        for w in waiters {
            if !self.frame_ok(w.frame, w.gen) {
                continue;
            }
            match tok {
                Tok::Val(v) => {
                    let pe = crit.later(w.ev, ev);
                    let dev = crit.event(
                        now,
                        pe,
                        Cat::Other,
                        now.saturating_sub(crit.time_of(pe)).max(1),
                    );
                    self.deliver(w.frame, w.gen, w.read.targets, Tok::Val(v), dev);
                }
                Tok::Null => {
                    // The write was nullified: resume the search below
                    // the producing frame.
                    self.resolve_read(
                        now,
                        w.frame,
                        w.gen,
                        w.read,
                        w.ev,
                        Some(w.resume_below),
                        crit,
                    );
                }
            }
        }
    }

    fn deliver(&mut self, frame: FrameId, gen: Gen, targets: [Target; 2], tok: Tok, ev: EvId) {
        for t in targets {
            match t {
                Target::None => {}
                Target::Inst { idx, slot } => {
                    self.outbox.push(
                        self.geom.tile_of_inst(idx),
                        OpnPayload::Operand { frame, gen, idx, slot, tok, ev },
                    );
                }
                Target::Write { slot } => {
                    self.outbox.push(
                        self.geom.tile_of_header_slot(slot),
                        OpnPayload::WriteVal { frame, gen, wslot: slot, tok, ev },
                    );
                }
            }
        }
    }
}
