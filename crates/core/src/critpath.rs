//! Critical-path analysis in the style of Fields et al. (ISCA 2001),
//! as used for the overhead attribution of Table 3 (§5.4).
//!
//! Every microarchitectural happening of interest appends an *event*
//! carrying its time, its last-arriving parent, and the category and
//! latency of the edge from that parent. At the end of a run, walking
//! the parent chain backward from the final commit yields the
//! program's critical path, with each cycle attributed to one of the
//! paper's overhead categories.

/// Overhead categories: the columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cat {
    /// Instruction distribution: fetch pipeline and GDN dispatch.
    IFetch = 0,
    /// Operand network hop latency.
    OpnHop = 1,
    /// Operand network contention (queueing beyond hop latency).
    OpnContention = 2,
    /// Execution of fanout (`mov`) instructions.
    Fanout = 3,
    /// Waiting for the GT to learn all block outputs were produced.
    BlockComplete = 4,
    /// The commit command/acknowledgement round trip.
    BlockCommit = 5,
    /// Everything a conventional core also pays: ALU execution,
    /// selection, cache access, misses.
    Other = 6,
}

/// Number of categories.
pub const NUM_CATS: usize = 7;

/// All categories in display order.
pub const CATS: [Cat; NUM_CATS] = [
    Cat::IFetch,
    Cat::OpnHop,
    Cat::OpnContention,
    Cat::Fanout,
    Cat::BlockComplete,
    Cat::BlockCommit,
    Cat::Other,
];

impl Cat {
    /// Column label used by the Table 3 printer.
    pub fn label(self) -> &'static str {
        match self {
            Cat::IFetch => "IFetch",
            Cat::OpnHop => "OPN Hops",
            Cat::OpnContention => "OPN Cont.",
            Cat::Fanout => "Fanout Ops",
            Cat::BlockComplete => "Block Complete",
            Cat::BlockCommit => "Block Commit",
            Cat::Other => "Other",
        }
    }
}

/// Sentinel for "no parent" (a root event).
pub const NO_EVENT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Event {
    time: u32,
    parent: u32,
    cat: Cat,
    lat: u32,
}

/// The event graph recorder.
///
/// When disabled, [`CritPath::event`] is a no-op returning
/// [`NO_EVENT`], so the simulator pays nothing on runs that do not
/// need attribution.
#[derive(Debug, Default)]
pub struct CritPath {
    enabled: bool,
    events: Vec<Event>,
}

/// Per-category cycle totals from a critical-path walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CritBreakdown {
    /// Cycles attributed to each [`Cat`] (indexed by discriminant).
    pub cycles: [u64; NUM_CATS],
}

impl CritBreakdown {
    /// Total cycles over all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction (0..=1) of the path in `cat`.
    pub fn fraction(&self, cat: Cat) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.cycles[cat as usize] as f64 / t as f64
        }
    }
}

impl CritPath {
    /// A recorder; `enabled` selects whether events are stored.
    pub fn new(enabled: bool) -> CritPath {
        CritPath { enabled, events: Vec::new() }
    }

    /// True if events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event at `time`, reached from `parent` over an edge
    /// of `cat` costing `lat` cycles. Returns the event's id.
    pub fn event(&mut self, time: u64, parent: u32, cat: Cat, lat: u64) -> u32 {
        if !self.enabled {
            return NO_EVENT;
        }
        let id = self.events.len() as u32;
        self.events.push(Event {
            time: time.min(u32::MAX as u64) as u32,
            parent,
            cat,
            lat: lat.min(u32::MAX as u64) as u32,
        });
        id
    }

    /// The recorded time of `ev` (0 for `NO_EVENT`).
    pub fn time_of(&self, ev: u32) -> u64 {
        if ev == NO_EVENT || !self.enabled {
            0
        } else {
            u64::from(self.events[ev as usize].time)
        }
    }

    /// Of two candidate parents, the one with the later recorded time
    /// (the last-arriving edge).
    pub fn later(&self, a: u32, b: u32) -> u32 {
        match (a, b) {
            (NO_EVENT, b) => b,
            (a, NO_EVENT) => a,
            (a, b) => {
                if self.time_of(a) >= self.time_of(b) {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events on the chain from `last` back to a root.
    pub fn chain_len(&self, last: u32) -> usize {
        let mut n = 0;
        let mut cur = last;
        while cur != NO_EVENT {
            n += 1;
            cur = self.events[cur as usize].parent;
        }
        n
    }

    /// Renders the first `n` chain events from `last` for debugging.
    pub fn debug_chain(&self, last: u32, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut cur = last;
        for _ in 0..n {
            if cur == NO_EVENT {
                out.push_str("ROOT\n");
                break;
            }
            let e = self.events[cur as usize];
            let _ = writeln!(
                out,
                "ev{cur}: t={} {:?} lat={} parent={}",
                e.time, e.cat, e.lat, e.parent as i64
            );
            cur = e.parent;
        }
        out
    }

    /// Walks the critical path backward from `last`, accumulating
    /// per-category cycles.
    pub fn walk(&self, last: u32) -> CritBreakdown {
        let mut out = CritBreakdown::default();
        let mut cur = last;
        while cur != NO_EVENT {
            let e = self.events[cur as usize];
            out.cycles[e.cat as usize] += u64::from(e.lat);
            cur = e.parent;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_free() {
        let mut cp = CritPath::new(false);
        assert_eq!(cp.event(10, NO_EVENT, Cat::Other, 5), NO_EVENT);
        assert!(cp.is_empty());
    }

    #[test]
    fn walk_accumulates_by_category() {
        let mut cp = CritPath::new(true);
        let a = cp.event(0, NO_EVENT, Cat::IFetch, 10);
        let b = cp.event(3, a, Cat::OpnHop, 3);
        let c = cp.event(5, b, Cat::OpnContention, 2);
        let d = cp.event(6, c, Cat::Other, 1);
        let bd = cp.walk(d);
        assert_eq!(bd.cycles[Cat::IFetch as usize], 10);
        assert_eq!(bd.cycles[Cat::OpnHop as usize], 3);
        assert_eq!(bd.cycles[Cat::OpnContention as usize], 2);
        assert_eq!(bd.cycles[Cat::Other as usize], 1);
        assert_eq!(bd.total(), 16);
        assert!((bd.fraction(Cat::IFetch) - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn later_picks_by_time() {
        let mut cp = CritPath::new(true);
        let a = cp.event(5, NO_EVENT, Cat::Other, 5);
        let b = cp.event(9, NO_EVENT, Cat::Other, 9);
        assert_eq!(cp.later(a, b), b);
        assert_eq!(cp.later(b, a), b);
        assert_eq!(cp.later(NO_EVENT, a), a);
        assert_eq!(cp.later(a, NO_EVENT), a);
    }
}
