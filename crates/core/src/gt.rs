//! The global control tile (§3.1, §4).
//!
//! The GT owns block management: next-block prediction, the 13-cycle
//! fetch pipeline (tag/hit-miss, prediction, then eight pipelined GDN
//! dispatch beats), I-cache refills over the GRN, completion detection
//! from the GSN daisy chains, misprediction and violation flushes over
//! the GCN, and the three-phase commit protocol (§4.4). It holds the
//! state of all eight in-flight frames.

use trips_isa::mem::SparseMem;
use trips_isa::{decode_header, BlockFlags, BranchKind, CHUNK_BYTES};

use crate::config::{CoreConfig, CoreGeometry, FrameMask, MAX_FRAMES};
use crate::critpath::{Cat, CritPath, NO_EVENT};
use crate::diag::FrameDiag;
use crate::fault::StormState;
use crate::msg::{EvId, FrameId, GcnMsg, GdnFetch, Gen, GrnRefill, GsnMsg, OpnPayload, TileId};
use crate::nets::{it_col_pos, opn_recv, Nets};
use crate::predictor::{NextBlockPredictor, PredictorCheckpoint};
use crate::profile::{TickPhase, TickProfile};
use crate::stats::CoreStats;
use crate::trace::{TraceKind, Tracer};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FState {
    Free,
    Fetching,
    Executing,
    Complete,
    Committing,
}

#[derive(Debug, Clone, Copy)]
struct ResolvedBranch {
    kind: BranchKind,
    exit: u8,
    /// `None` means halt: nothing follows this block.
    target: Option<u64>,
}

#[derive(Debug, Clone)]
struct Frame {
    state: FState,
    gen: Gen,
    pc: u64,
    size: u64,
    chunks: u8,
    store_mask: u32,
    flags: BlockFlags,
    predicted_next: Option<u64>,
    pred_cp: Option<PredictorCheckpoint>,
    hist_at_predict: u32,
    writes_done: bool,
    stores_done: bool,
    branch: Option<ResolvedBranch>,
    commit_sent: bool,
    rt_ack: bool,
    dt_ack: bool,
    t_fetch: u64,
    t_dispatch: u64,
    t_complete: u64,
    t_commit: u64,
    fetch_ev: EvId,
    writes_ev: EvId,
    stores_ev: EvId,
    branch_ev: EvId,
    complete_ev: EvId,
    commit_ev: EvId,
}

impl Default for Frame {
    fn default() -> Frame {
        Frame {
            state: FState::Free,
            gen: 0,
            pc: 0,
            size: 0,
            chunks: 0,
            store_mask: 0,
            flags: BlockFlags::empty(),
            predicted_next: None,
            pred_cp: None,
            hist_at_predict: 0,
            writes_done: false,
            stores_done: false,
            branch: None,
            commit_sent: false,
            rt_ack: false,
            dt_ack: false,
            t_fetch: 0,
            t_dispatch: 0,
            t_complete: 0,
            t_commit: 0,
            fetch_ev: NO_EVENT,
            writes_ev: NO_EVENT,
            stores_ev: NO_EVENT,
            branch_ev: NO_EVENT,
            complete_ev: NO_EVENT,
            commit_ev: NO_EVENT,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Stage {
    Tag { done_at: u64 },
    Refill,
    Predict { done_at: u64 },
    AwaitDispatch,
}

#[derive(Debug, Clone, Copy)]
struct FetchOp {
    frame: FrameId,
    pc: u64,
    stage: Stage,
}

/// The global control tile.
pub struct GlobalTile {
    geom: CoreGeometry,
    frames: Vec<Frame>,
    order: VecDeque<FrameId>,
    next_pc: Option<u64>,
    pc_ready_ev: EvId,
    fetch: Option<FetchOp>,
    dispatch_free_at: u64,
    itag: Vec<Vec<Option<u64>>>,
    itag_lru: Vec<u8>,
    /// The next-block predictor.
    pub predictor: NextBlockPredictor,
    halt_pending: bool,
    /// True once the halt block deallocated and the machine drained.
    pub halted: bool,
    slot_free_ev: Vec<EvId>,
    last_commit_ev: EvId,
    /// Event of the final deallocation, the root for the critical-path
    /// walk.
    pub final_ev: EvId,
    /// Fault-plan flush storm (`None` on the production path).
    storm: Option<StormState>,
}

const ITAG_SETS: usize = 64;
const ITAG_WAYS: usize = 2;

impl GlobalTile {
    /// A GT that will start fetching at `entry`.
    pub fn new(cfg: &CoreConfig, entry: u64) -> GlobalTile {
        GlobalTile {
            geom: cfg.geometry,
            frames: vec![Frame::default(); cfg.geometry.frames],
            order: VecDeque::new(),
            next_pc: Some(entry),
            pc_ready_ev: NO_EVENT,
            fetch: None,
            dispatch_free_at: 0,
            itag: vec![vec![None; ITAG_WAYS]; ITAG_SETS],
            itag_lru: vec![0; ITAG_SETS],
            predictor: NextBlockPredictor::new(cfg.predictor),
            halt_pending: false,
            halted: false,
            slot_free_ev: vec![NO_EVENT; cfg.geometry.frames],
            last_commit_ev: NO_EVENT,
            final_ev: NO_EVENT,
            storm: cfg.faults.as_ref().and_then(crate::fault::FaultPlan::storm_state),
        }
    }

    /// In-flight frame count.
    pub fn in_flight(&self) -> usize {
        self.order.len()
    }

    /// Current generation of every frame slot (for the invariant
    /// checker's cross-tile generation comparison).
    pub(crate) fn slot_gens(&self) -> Vec<Gen> {
        self.frames.iter().map(|f| f.gen).collect()
    }

    /// Which frame slots are free (for the invariant checker).
    pub(crate) fn slot_free(&self) -> Vec<bool> {
        self.frames.iter().map(|f| f.state == FState::Free).collect()
    }

    /// GT-internal protocol invariants, checked every tick under
    /// fuzzing (see [`crate::invariants`] for the full catalogue).
    pub(crate) fn audit(&self) -> Result<(), String> {
        // Age order holds each in-flight frame exactly once.
        let mut seen: FrameMask = 0;
        for &f in &self.order {
            let bit = (1 as FrameMask) << f.0;
            if seen & bit != 0 {
                return Err(format!("frame {} appears twice in the GT age order", f.0));
            }
            seen |= bit;
        }
        for fi in 0..self.frames.len() {
            let f = &self.frames[fi];
            let in_order = seen & (1 << fi) != 0;
            if in_order == (f.state == FState::Free) {
                return Err(format!(
                    "frame {fi} is {:?} but {} the GT age order",
                    f.state,
                    if in_order { "in" } else { "not in" }
                ));
            }
            // Completion strictly requires every §4.4 completion input.
            if matches!(f.state, FState::Complete | FState::Committing)
                && !(f.writes_done && f.stores_done && f.branch.is_some())
            {
                return Err(format!(
                    "frame {fi} reached {:?} with wd={} sd={} branch={}",
                    f.state,
                    f.writes_done,
                    f.stores_done,
                    f.branch.is_some()
                ));
            }
            // Commit acks may only arrive for a sent commit command.
            if (f.rt_ack || f.dt_ack) && !f.commit_sent {
                return Err(format!(
                    "frame {fi} holds a commit ack (rt={} dt={}) before its commit command",
                    f.rt_ack, f.dt_ack
                ));
            }
            if f.commit_sent && f.state != FState::Committing {
                return Err(format!("frame {fi} sent commit but is {:?}", f.state));
            }
        }
        // Commit commands go out in age order: the committing frames
        // form a prefix of the age order (§4.4 pipelined commit).
        let mut prefix_over = false;
        for &f in &self.order {
            let sent = self.frames[f.0 as usize].commit_sent;
            if prefix_over && sent {
                return Err(format!("frame {} committed out of age order", f.0));
            }
            if !sent {
                prefix_over = true;
            }
        }
        Ok(())
    }

    /// True while a tick can make progress without a new message: a
    /// fetch is staged, a next PC awaits a free frame, or any block is
    /// in flight (in-flight blocks pipeline commit commands and
    /// deallocate across cycles with no further input).
    fn busy(&self) -> bool {
        self.fetch.is_some() || self.next_pc.is_some() || !self.order.is_empty()
    }

    /// Clock-gating predicate: internal work pending, or a message
    /// bound for the GT on a GSN chain head or the OPN.
    pub fn active(&self, nets: &Nets) -> bool {
        self.busy()
            || nets.gsn_rt.has_pending_at(0)
            || nets.gsn_dt.has_pending_at(0)
            || nets.gsn_it.has_pending_at(0)
            || nets.opn_delivered_at(TileId::Gt)
    }

    /// The earliest cycle at which a tick can make progress without a
    /// new message, for the epoch-skipping scheduler. `Some(now)`
    /// mirrors each tick phase's own progress condition: a commit
    /// command ready to issue, a completed-but-unconverted block, a
    /// fully-acked head block, a fetch stage whose timer has expired,
    /// or a startable fetch. `Some(t > now)` is a pure timer wait
    /// (tag/predict latency, dispatch pacing); `None` means every
    /// in-flight block is waiting on micronet input, which the
    /// activity scan folds from the chains and OPN directly.
    pub(crate) fn next_wake(&self, now: u64, max_frames: usize) -> Option<u64> {
        let mut wake: Option<u64> = None;
        // Commit pipeline: a command goes out once the first unsent
        // block (in age order) is Complete; an Executing block with
        // all three done-conditions converts this tick.
        for &frame in &self.order {
            let f = &self.frames[frame.0 as usize];
            if f.commit_sent {
                continue;
            }
            if f.state == FState::Complete
                || (f.state == FState::Executing
                    && f.writes_done
                    && f.stores_done
                    && f.branch.is_some())
            {
                return Some(now);
            }
            break;
        }
        // Dealloc: the head block pops once both commit acks are in.
        if let Some(&frame) = self.order.front() {
            let f = &self.frames[frame.0 as usize];
            if f.state == FState::Committing && f.rt_ack && f.dt_ack {
                return Some(now);
            }
        }
        // Fetch FSM.
        if let Some(op) = &self.fetch {
            match op.stage {
                Stage::Tag { done_at } | Stage::Predict { done_at } => {
                    wake = Some(done_at.max(now));
                }
                // Waits on a GSN-IT RefillDone message.
                Stage::Refill => {}
                Stage::AwaitDispatch => {
                    let fi = op.frame.0 as usize;
                    let inhibit = self.frames[fi].flags.contains(BlockFlags::INHIBIT_SPECULATION);
                    let oldest = self.order.front() == Some(&op.frame);
                    if !inhibit || oldest {
                        wake = Some(self.dispatch_free_at.max(now));
                    }
                    // else: gated until older blocks drain, which the
                    // commit/dealloc conditions above track.
                }
            }
        } else if !self.halt_pending
            && !self.halted
            && self.next_pc.is_some()
            && self.order.len() < max_frames
            && self.frames.iter().any(|f| f.state == FState::Free)
        {
            return Some(now);
        }
        wake
    }

    /// Per-frame status for the hang diagnoser, in age order.
    pub fn frame_diags(&self) -> Vec<FrameDiag> {
        self.order
            .iter()
            .map(|&frame| {
                let f = &self.frames[frame.0 as usize];
                let mut waiting = Vec::new();
                if f.state == FState::Fetching {
                    waiting.push("dispatch");
                }
                if f.state == FState::Executing {
                    if !f.writes_done {
                        waiting.push("register writes (GSN WritesDone)");
                    }
                    if !f.stores_done {
                        waiting.push("stores (GSN StoresDone)");
                    }
                    if f.branch.is_none() {
                        waiting.push("branch (OPN)");
                    }
                }
                if f.state == FState::Complete && !f.commit_sent {
                    waiting.push("older blocks' commit commands");
                }
                if f.state == FState::Committing {
                    if !f.rt_ack {
                        waiting.push("RT commit ack");
                    }
                    if !f.dt_ack {
                        waiting.push("DT commit ack");
                    }
                }
                FrameDiag {
                    frame: frame.0,
                    state: format!("{:?}", f.state),
                    pc: f.pc,
                    waiting_on: waiting.join(", "),
                }
            })
            .collect()
    }

    /// A human-readable snapshot of GT state, for diagnosing hangs.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "GT: next_pc={:x?} halt_pending={} halted={} fetch={:?} order={:?}",
            self.next_pc, self.halt_pending, self.halted, self.fetch, self.order
        );
        for (i, f) in self.frames.iter().enumerate() {
            if f.state == FState::Free {
                continue;
            }
            let _ = writeln!(
                s,
                "  frame {i}: {:?} gen={} pc={:#x} wd={} sd={} br={:?} cs={} rta={} dta={} pred={:x?}",
                f.state,
                f.gen,
                f.pc,
                f.writes_done,
                f.stores_done,
                f.branch,
                f.commit_sent,
                f.rt_ack,
                f.dt_ack,
                f.predicted_next,
            );
        }
        s
    }

    fn itag_lookup(&self, addr: u64) -> bool {
        let set = ((addr >> 7) as usize) % ITAG_SETS;
        let tag = addr >> 13;
        self.itag[set].contains(&Some(tag))
    }

    fn itag_insert(&mut self, addr: u64) {
        let set = ((addr >> 7) as usize) % ITAG_SETS;
        let tag = addr >> 13;
        if self.itag[set].contains(&Some(tag)) {
            return;
        }
        let way = self.itag_lru[set] as usize % ITAG_WAYS;
        self.itag[set][way] = Some(tag);
        self.itag_lru[set] = (self.itag_lru[set] + 1) % ITAG_WAYS as u8;
    }

    /// One cycle.
    ///
    /// With [`CoreConfig::fused_gt`] set (the default) the tick is two
    /// passes — the chain heads, then one walk over the in-flight
    /// frames in age order doing completion, commit issue, and
    /// dealloc together — instead of the six sequential phases the
    /// protocol is specified as. The fused walk is bit-identical to
    /// the phased one (derivation in DESIGN.md §5b; the phased path is
    /// kept precisely so the equivalence suite can check that).
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        mem: &SparseMem,
        tracer: &mut Tracer,
        prof: &mut TickProfile,
    ) {
        if cfg.fused_gt {
            let t = prof.begin();
            self.drain_status(now, nets, crit);
            self.drain_branches(now, nets, crit, stats, tracer);
            self.recv_refills(now, nets);
            prof.end(TickPhase::GtChains, t);
            let t = prof.begin();
            self.advance_frames_fused(now, nets, crit, stats, tracer);
            prof.end(TickPhase::GtFrames, t);
            let t = prof.begin();
            self.fetch_advance(now, cfg, nets, crit, stats, mem, tracer);
            prof.end(TickPhase::GtFetch, t);
        } else {
            let t = prof.begin();
            self.drain_status(now, nets, crit);
            self.drain_branches(now, nets, crit, stats, tracer);
            prof.end(TickPhase::GtChains, t);
            let t = prof.begin();
            self.check_completion(now, crit, tracer);
            self.issue_commit(now, nets, crit, tracer);
            self.dealloc(now, crit, stats, tracer);
            prof.end(TickPhase::GtFrames, t);
            let t = prof.begin();
            self.recv_refills(now, nets);
            self.fetch_advance(now, cfg, nets, crit, stats, mem, tracer);
            prof.end(TickPhase::GtFetch, t);
        }
    }

    fn frame_ok(&self, frame: FrameId, gen: Gen) -> bool {
        let f = &self.frames[frame.0 as usize];
        f.state != FState::Free && f.gen == gen
    }

    fn drain_status(&mut self, now: u64, nets: &mut Nets, crit: &mut CritPath) {
        let mut violations: Vec<(FrameId, Gen)> = Vec::new();
        while let Some(msg) = nets.gsn_rt.recv(now, 0) {
            match msg {
                GsnMsg::WritesDone { frame, gen, ev } if self.frame_ok(frame, gen) => {
                    let f = &mut self.frames[frame.0 as usize];
                    f.writes_done = true;
                    f.writes_ev = ev;
                }
                GsnMsg::WritesCommitted { frame, gen } if self.frame_ok(frame, gen) => {
                    self.frames[frame.0 as usize].rt_ack = true;
                }
                _ => {}
            }
        }
        while let Some(msg) = nets.gsn_dt.recv(now, 0) {
            match msg {
                GsnMsg::StoresDone { frame, gen, ev } if self.frame_ok(frame, gen) => {
                    let f = &mut self.frames[frame.0 as usize];
                    f.stores_done = true;
                    f.stores_ev = ev;
                }
                GsnMsg::StoresCommitted { frame, gen } if self.frame_ok(frame, gen) => {
                    self.frames[frame.0 as usize].dt_ack = true;
                }
                GsnMsg::Violation { frame, gen } => violations.push((frame, gen)),
                _ => {}
            }
        }
        // Refill completions are consumed by the fetch FSM; violations
        // flush from the mis-speculated load's block, inclusive.
        for (frame, gen) in violations {
            if !self.frame_ok(frame, gen) {
                continue;
            }
            if self.frames[frame.0 as usize].commit_sent {
                continue; // too late to matter; cannot happen in order
            }
            let pc = self.frames[frame.0 as usize].pc;
            if let Some(cp) = self.frames[frame.0 as usize].pred_cp {
                self.predictor.restore(cp);
            }
            self.flush_from(now, frame, true, Some(pc), NO_EVENT, nets, crit);
        }
    }

    fn drain_branches(
        &mut self,
        now: u64,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        while let Some(m) = opn_recv(nets, now, TileId::Gt, tracer) {
            let (hops, queued) = (m.hops, m.queued);
            let OpnPayload::Branch { frame, gen, kind, exit, offset, reg_target, ev } = m.payload
            else {
                continue;
            };
            if !self.frame_ok(frame, gen) {
                continue;
            }
            let fi = frame.0 as usize;
            if self.frames[fi].branch.is_some() {
                panic!("block {frame:?} fired more than one branch");
            }
            let e_hop = crit.event(now - u64::from(queued), ev, Cat::OpnHop, u64::from(hops) + 1);
            let e_arr = crit.event(now, e_hop, Cat::OpnContention, u64::from(queued));
            let target = match kind {
                BranchKind::Halt => None,
                _ => Some(reg_target.unwrap_or_else(|| {
                    self.frames[fi].pc.wrapping_add((i64::from(offset) * CHUNK_BYTES as i64) as u64)
                })),
            };
            self.frames[fi].branch = Some(ResolvedBranch { kind, exit, target });
            self.frames[fi].branch_ev = e_arr;

            // Misprediction check against the target used to continue
            // the fetch stream past this block.
            let predicted = self.frames[fi].predicted_next;
            let mispredicted = predicted != target;
            if mispredicted {
                stats.mispredictions += 1;
                stats.branch_flushes += 1;
                // Repair speculative predictor state: rewind to the
                // checkpoint taken before predicting this block's
                // successor, then apply the actual outcome.
                let f = &self.frames[fi];
                let (pc, size) = (f.pc, f.size);
                if let Some(cp) = f.pred_cp {
                    self.predictor.restore(cp);
                    self.predictor.apply_outcome(exit, kind, pc + size);
                }
                if kind == BranchKind::Halt {
                    self.halt_pending = true;
                }
                self.flush_from(now, frame, false, target, e_arr, nets, crit);
            } else if kind != BranchKind::Halt && target.is_some() {
                // Fault-plan flush storm: treat a *correctly* predicted
                // branch as a misprediction — destroy all younger
                // speculative work and refetch from the (correct)
                // target. Exercises the §4.3 flush protocol far more
                // often than real mispredictions would; architectural
                // state is unchanged because only speculative frames
                // die and the restart PC is the true successor.
                let storm = self.storm.as_mut().is_some_and(StormState::roll);
                if storm {
                    stats.protocol.forced_flushes += 1;
                    let f = &self.frames[fi];
                    let (pc, size) = (f.pc, f.size);
                    if let Some(cp) = f.pred_cp {
                        // Same predictor repair as a real mispredict:
                        // rewind, then replay the actual outcome.
                        self.predictor.restore(cp);
                        self.predictor.apply_outcome(exit, kind, pc + size);
                    }
                    self.flush_from(now, frame, false, target, e_arr, nets, crit);
                }
            }
        }
    }

    /// Flushes speculative frames: every frame younger than `frame`,
    /// and `frame` itself when `inclusive` (violation replay). Restart
    /// fetch at `new_pc`.
    #[allow(clippy::too_many_arguments)]
    fn flush_from(
        &mut self,
        now: u64,
        frame: FrameId,
        inclusive: bool,
        new_pc: Option<u64>,
        cause_ev: EvId,
        nets: &mut Nets,
        crit: &mut CritPath,
    ) {
        let Some(pos) = self.order.iter().position(|&x| x == frame) else {
            return;
        };
        let first_victim = if inclusive { pos } else { pos + 1 };
        let mut mask: FrameMask = 0;
        let mut gens = [0u32; MAX_FRAMES];
        for (g, f) in gens.iter_mut().zip(&self.frames) {
            *g = f.gen;
        }
        while self.order.len() > first_victim {
            let v = self.order.pop_back().expect("length checked");
            let vi = v.0 as usize;
            mask |= (1 as FrameMask) << vi;
            let f = &mut self.frames[vi];
            let gen = f.gen + 1;
            *f = Frame { gen, ..Frame::default() };
            gens[vi] = gen;
            self.slot_free_ev[vi] = cause_ev;
        }
        if let Some(op) = self.fetch {
            if mask & ((1 as FrameMask) << op.frame.0) != 0 {
                self.fetch = None;
            }
        }
        if mask != 0 {
            nets.gcn_broadcast(now, GcnMsg::Flush { mask, gens });
        }
        self.next_pc = new_pc;
        self.pc_ready_ev = crit.event(now, cause_ev, Cat::Other, 1);
        // A squashed halt observation must not keep gating fetch.
        if !self.halted {
            self.halt_pending = self.order.iter().any(|&f| {
                matches!(
                    self.frames[f.0 as usize].branch,
                    Some(ResolvedBranch { kind: BranchKind::Halt, .. })
                )
            });
        }
    }

    /// Converts frame `fi` to `Complete` when all its inputs are in.
    /// The predicate and the critical-path parents read only the
    /// frame's own state, so the conversion is order-independent
    /// across frames of one cycle.
    fn try_complete(&mut self, fi: usize, now: u64, crit: &mut CritPath, tracer: &mut Tracer) {
        let f = &mut self.frames[fi];
        if f.state == FState::Executing && f.writes_done && f.stores_done && f.branch.is_some() {
            f.state = FState::Complete;
            f.t_complete = now;
            tracer.record(now, || TraceKind::BlockComplete { frame: FrameId(fi as u8) });
            let parent = crit.later(crit.later(f.writes_ev, f.stores_ev), f.branch_ev);
            f.complete_ev = crit.event(
                now,
                parent,
                Cat::BlockComplete,
                now.saturating_sub(crit.time_of(parent)),
            );
        }
    }

    fn check_completion(&mut self, now: u64, crit: &mut CritPath, tracer: &mut Tracer) {
        for fi in 0..self.frames.len() {
            self.try_complete(fi, now, crit, tracer);
        }
    }

    /// Sends the cycle's one commit command for `frame` (§4.4) and
    /// trains the predictor in commit order.
    fn send_commit(
        &mut self,
        frame: FrameId,
        now: u64,
        nets: &mut Nets,
        crit: &mut CritPath,
        tracer: &mut Tracer,
    ) {
        let fi = frame.0 as usize;
        let f = &mut self.frames[fi];
        f.commit_sent = true;
        f.state = FState::Committing;
        f.t_commit = now;
        let parent = crit.later(f.complete_ev, self.last_commit_ev);
        f.commit_ev =
            crit.event(now, parent, Cat::BlockCommit, now.saturating_sub(crit.time_of(parent)));
        self.last_commit_ev = f.commit_ev;
        tracer.record(now, || TraceKind::CommitCmd { frame });
        nets.gcn_broadcast(now, GcnMsg::Commit { frame, gen: f.gen });

        let b = f.branch.expect("complete blocks resolved their branch");
        let (pc, size, hist) = (f.pc, f.size, f.hist_at_predict);
        let target = b.target.unwrap_or(pc + size);
        self.predictor.update(pc, b.exit, b.kind, target, hist);
    }

    fn issue_commit(
        &mut self,
        now: u64,
        nets: &mut Nets,
        crit: &mut CritPath,
        tracer: &mut Tracer,
    ) {
        // Pipelined commit: a command may go out for a block when all
        // older blocks have had theirs sent (§4.4).
        let mut target = None;
        for &frame in &self.order {
            let fi = frame.0 as usize;
            if self.frames[fi].commit_sent {
                continue;
            }
            if self.frames[fi].state != FState::Complete {
                return;
            }
            target = Some(frame);
            break;
        }
        if let Some(frame) = target {
            self.send_commit(frame, now, nets, crit, tracer); // one command per cycle
        }
    }

    fn dealloc(
        &mut self,
        now: u64,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        while let Some(&frame) = self.order.front() {
            let f = &self.frames[frame.0 as usize];
            if !(f.state == FState::Committing && f.rt_ack && f.dt_ack) {
                return;
            }
            self.dealloc_head(now, crit, stats, tracer);
        }
    }

    /// Retires the head of `order` (which the caller checked is fully
    /// acknowledged) and frees its slot.
    fn dealloc_head(
        &mut self,
        now: u64,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        let frame = *self.order.front().expect("dealloc_head needs a head frame");
        let fi = frame.0 as usize;
        let f = &self.frames[fi];
        let was_halt = matches!(f.branch, Some(ResolvedBranch { kind: BranchKind::Halt, .. }));
        if stats.timeline.len() < 64 {
            stats.timeline.push(crate::stats::BlockTiming {
                pc: f.pc,
                fetch: f.t_fetch,
                dispatch: f.t_dispatch,
                complete: f.t_complete,
                commit: f.t_commit,
                ack: now,
            });
        }
        let commit_ev = f.commit_ev;
        let pc = f.pc;
        tracer.record(now, || TraceKind::BlockAck { frame, pc });
        let gen = f.gen + 1;
        self.frames[fi] = Frame { gen, ..Frame::default() };
        self.order.pop_front();
        stats.blocks_committed += 1;
        let ev = crit.event(
            now,
            commit_ev,
            Cat::BlockCommit,
            now.saturating_sub(crit.time_of(commit_ev)),
        );
        self.slot_free_ev[fi] = ev;
        self.final_ev = ev;
        if was_halt {
            // The halt's resolution flushed everything younger and
            // stopped fetch, so the halt block is always last out.
            self.halt_pending = true;
            self.halted = true;
        }
    }

    /// The fused in-flight frame walk (see [`GlobalTile::tick`]): one
    /// age-order pass doing what `check_completion`, `issue_commit`,
    /// and `dealloc` do in three. Per frame, oldest first: convert an
    /// executing frame whose inputs are all in; let the cycle's single
    /// commit command go to the first frame in age order without one
    /// (nothing younger may get it, §4.4); pop the frame if it is the
    /// head and fully acknowledged. The interleaving cannot change any
    /// decision the phased order makes: completion reads only the
    /// frame's own state, a frame issued its commit this cycle cannot
    /// also dealloc this cycle (the acks need a GCN→GSN round trip),
    /// and every dealloc'd head already had `commit_sent`, so the
    /// commit window walks the same frames (DESIGN.md §5b).
    fn advance_frames_fused(
        &mut self,
        now: u64,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        let mut commit_open = true;
        let mut at_head = true;
        let mut oi = 0;
        while oi < self.order.len() {
            let frame = self.order[oi];
            let fi = frame.0 as usize;
            self.try_complete(fi, now, crit, tracer);
            if commit_open && !self.frames[fi].commit_sent {
                if self.frames[fi].state == FState::Complete {
                    self.send_commit(frame, now, nets, crit, tracer);
                }
                commit_open = false;
            }
            if at_head {
                let f = &self.frames[fi];
                if f.state == FState::Committing && f.rt_ack && f.dt_ack {
                    debug_assert_eq!(oi, 0, "only the head of `order` deallocates");
                    self.dealloc_head(now, crit, stats, tracer);
                    continue; // the next frame is the new head at oi == 0
                }
                at_head = false;
            }
            oi += 1;
        }
    }

    /// Refill completions from the IT chain. Nothing between this and
    /// the fetch advance reads the I-tag array or the fetch stage, so
    /// the fused tick may drain these with the other chain heads while
    /// the phased tick keeps them adjacent to the fetch FSM — same
    /// result either way.
    fn recv_refills(&mut self, now: u64, nets: &mut Nets) {
        while let Some(msg) = nets.gsn_it.recv(now, 0) {
            if let GsnMsg::RefillDone { addr } = msg {
                self.itag_insert(addr);
                if let Some(op) = &mut self.fetch {
                    if matches!(op.stage, Stage::Refill) && op.pc == addr {
                        op.stage = Stage::Tag { done_at: now + 1 };
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_advance(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        mem: &SparseMem,
        tracer: &mut Tracer,
    ) {
        // Advance the in-flight fetch.
        if let Some(op) = self.fetch {
            match op.stage {
                Stage::Tag { done_at } if now >= done_at => {
                    let mut header = [0u8; CHUNK_BYTES];
                    mem.read_bytes(op.pc, &mut header);
                    match decode_header(&header) {
                        Err(_) => {
                            // Speculative fetch of non-code memory:
                            // park the frame; an older block's flush
                            // will clean it up.
                            self.next_pc = None;
                            self.fetch = None;
                        }
                        Ok((h, chunks)) => {
                            if self.itag_lookup(op.pc) {
                                let fi = op.frame.0 as usize;
                                let f = &mut self.frames[fi];
                                f.chunks = chunks as u8;
                                f.size = CHUNK_BYTES as u64 * (1 + chunks as u64);
                                f.store_mask = h.store_mask;
                                f.flags = h.flags;
                                self.fetch = Some(FetchOp {
                                    stage: Stage::Predict { done_at: now + cfg.predict_lat },
                                    ..op
                                });
                            } else {
                                stats.icache_refills += 1;
                                for it in 0..self.geom.num_its() {
                                    nets.grn.send(
                                        now,
                                        0,
                                        it_col_pos(it),
                                        GrnRefill { addr: op.pc, chunks: chunks as u8 },
                                    );
                                }
                                self.fetch = Some(FetchOp { stage: Stage::Refill, ..op });
                            }
                        }
                    }
                }
                Stage::Predict { done_at } if now >= done_at => {
                    let fi = op.frame.0 as usize;
                    let cp = self.predictor.checkpoint();
                    let size = self.frames[fi].size;
                    let pred = self.predictor.predict(op.pc, size);
                    stats.predictions += 1;
                    let f = &mut self.frames[fi];
                    f.predicted_next = Some(pred.target);
                    f.pred_cp = Some(cp);
                    f.hist_at_predict = cp.history();
                    if !self.halt_pending {
                        self.next_pc = Some(pred.target);
                        self.pc_ready_ev =
                            crit.event(now, self.frames[fi].fetch_ev, Cat::IFetch, cfg.predict_lat);
                    }
                    self.fetch = Some(FetchOp { stage: Stage::AwaitDispatch, ..op });
                }
                Stage::AwaitDispatch => {
                    let fi = op.frame.0 as usize;
                    let inhibit = self.frames[fi].flags.contains(BlockFlags::INHIBIT_SPECULATION);
                    let oldest = self.order.front() == Some(&op.frame);
                    if now >= self.dispatch_free_at && (!inhibit || oldest) {
                        self.dispatch_free_at = now + self.geom.beats() as u64;
                        let f = &mut self.frames[fi];
                        f.state = FState::Executing;
                        f.t_dispatch = now;
                        let ev = crit.event(
                            now,
                            f.fetch_ev,
                            Cat::IFetch,
                            now.saturating_sub(crit.time_of(f.fetch_ev)),
                        );
                        let cmd = GdnFetch {
                            frame: op.frame,
                            gen: f.gen,
                            addr: op.pc,
                            chunks: f.chunks,
                            store_mask: f.store_mask,
                            ev,
                        };
                        for it in 0..self.geom.num_its() {
                            nets.gdn_col.send(now, 0, it_col_pos(it), cmd);
                        }
                        stats.blocks_fetched += 1;
                        let f = &self.frames[fi];
                        stats.protocol.fetch_to_dispatch.record(now - f.t_fetch);
                        tracer
                            .record(now, || TraceKind::DispatchCmd { frame: op.frame, pc: op.pc });
                        self.fetch = None;
                    }
                }
                _ => {}
            }
        }

        // Start a new fetch.
        if self.fetch.is_none() && !self.halt_pending && !self.halted {
            let Some(pc) = self.next_pc else { return };
            if self.order.len() >= cfg.max_frames {
                return;
            }
            let Some(slot) = (0..self.frames.len()).find(|&i| self.frames[i].state == FState::Free)
            else {
                return;
            };
            let frame = FrameId(slot as u8);
            let parent = crit.later(self.pc_ready_ev, self.slot_free_ev[slot]);
            let cat = if parent == self.slot_free_ev[slot] && parent != NO_EVENT {
                Cat::BlockCommit
            } else {
                Cat::IFetch
            };
            let fetch_ev = crit.event(now, parent, cat, now.saturating_sub(crit.time_of(parent)));
            stats.protocol.fetches_started += 1;
            if self.frames.iter().any(|f| f.state == FState::Committing) {
                stats.protocol.overlapped_fetches += 1;
            }
            tracer.record(now, || TraceKind::FetchIssued { frame, pc });
            let f = &mut self.frames[slot];
            f.state = FState::Fetching;
            f.pc = pc;
            f.t_fetch = now;
            f.fetch_ev = fetch_ev;
            self.order.push_back(frame);
            self.next_pc = None; // consumed; refilled by the predict stage
            self.fetch =
                Some(FetchOp { frame, pc, stage: Stage::Tag { done_at: now + cfg.tag_lat } });
        }
    }
}
