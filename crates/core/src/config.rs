//! Configuration of the processor core model.

use trips_mem::MemConfig;

use crate::fault::FaultPlan;

/// Number of ET rows/columns (fixed by the 128-instruction block
/// format: four chunks of 32 instructions map to four rows).
pub const ET_ROWS: usize = 4;
/// ET columns per row.
pub const ET_COLS: usize = 4;
/// Register tiles (= register banks).
pub const NUM_RTS: usize = 4;
/// Data tiles (= L1D banks).
pub const NUM_DTS: usize = 4;
/// Instruction tiles (header + four body chunks).
pub const NUM_ITS: usize = 5;
/// In-flight block frames.
pub const NUM_FRAMES: usize = 8;
/// Reservation stations per ET per frame.
pub const RS_PER_FRAME: usize = 8;

/// Next-block predictor sizing (§3.1: a tournament local/gshare exit
/// predictor plus a BTB/CTB/RAS/type target predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the local exit predictor (paper: 9K bits).
    pub local_entries: usize,
    /// Entries in the gshare exit predictor (paper: 16K bits).
    pub gshare_entries: usize,
    /// Entries in the tournament chooser (paper: 12K bits).
    pub chooser_entries: usize,
    /// Exits of history used by gshare (3 bits each).
    pub history_exits: usize,
    /// Branch target buffer entries (paper: 20K bits).
    pub btb_entries: usize,
    /// Call target buffer entries (paper: 6K bits).
    pub ctb_entries: usize,
    /// Return address stack depth (paper: 7K bits).
    pub ras_entries: usize,
    /// Branch type predictor entries (paper: 12K bits).
    pub btype_entries: usize,
}

impl PredictorConfig {
    /// The prototype's sizing.
    pub fn prototype() -> PredictorConfig {
        PredictorConfig {
            local_entries: 1024,
            gshare_entries: 4096,
            chooser_entries: 4096,
            history_exits: 8,
            btb_entries: 512,
            ctb_entries: 128,
            ras_entries: 128,
            btype_entries: 4096,
        }
    }

    /// A degenerate predictor for ablations: always predicts the
    /// sequential next block.
    pub fn sequential_only() -> PredictorConfig {
        PredictorConfig {
            local_entries: 1,
            gshare_entries: 1,
            chooser_entries: 1,
            history_exits: 1,
            btb_entries: 1,
            ctb_entries: 1,
            ras_entries: 1,
            btype_entries: 1,
        }
    }
}

/// The secondary memory system behind the L1 banks.
///
/// Both variants serve the same two request streams — DT MSHR fills
/// and IT I-cache refills — and only ever change *when* a fill
/// completes, never what a load returns (load values come from the
/// core's memory image at execute time, see DESIGN.md §5d), so the
/// backend choice cannot affect architectural results.
#[derive(Debug, Clone, PartialEq)]
pub enum MemBackend {
    /// A perfect L2: every miss fills after a flat `latency`, as the
    /// paper's Table 3 runs do to isolate core effects. The default;
    /// bit-identical to the pre-backend model (pinned by the
    /// `mem_backend` equivalence suite).
    PerfectL2 {
        /// Fill latency in cycles for I-side refills and D-side misses.
        latency: u64,
    },
    /// The §3.6 NUCA secondary system: requests travel the 4×10
    /// wormhole OCN to sixteen cache banks
    /// ([`trips_mem::SecondarySystem`]), ticked in lockstep with the
    /// core. Store commits additionally issue line writebacks whose
    /// acknowledgements gate commit completion (the ESN's role in the
    /// hardware).
    Nuca(MemConfig),
}

impl MemBackend {
    /// The prototype default: a perfect L2 with the 12-cycle fill the
    /// paper's Table 3 runs use.
    pub fn prototype() -> MemBackend {
        MemBackend::PerfectL2 { latency: 12 }
    }

    /// The NUCA backend in its prototype configuration.
    pub fn nuca_prototype() -> MemBackend {
        MemBackend::Nuca(MemConfig::prototype())
    }
}

/// Full configuration of the core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Parallel operand networks (1 in the prototype; 2 models the
    /// "more operand network bandwidth" extension of §7).
    pub opn_networks: usize,
    /// OPN router input-FIFO depth.
    pub opn_fifo: usize,
    /// L1D sets per DT bank (8 KB, 2-way, 64 B lines = 64 sets).
    pub l1d_sets: usize,
    /// L1D associativity.
    pub l1d_ways: usize,
    /// L1D hit latency in cycles.
    pub l1d_hit_lat: u64,
    /// The secondary memory system serving I-side refills and D-side
    /// misses (a perfect flat-latency L2 by default, or the §3.6 NUCA
    /// system).
    pub mem_backend: MemBackend,
    /// Integer ALU latency.
    pub int_lat: u64,
    /// Integer multiply latency (pipelined).
    pub mul_lat: u64,
    /// Integer divide latency (unpipelined, §3.4: 24 cycles).
    pub div_lat: u64,
    /// FP add/mul/compare latency (pipelined).
    pub fp_lat: u64,
    /// FP divide/sqrt latency (unpipelined).
    pub fdiv_lat: u64,
    /// Dependence predictor entries (§3.5: 1024-entry bit vector).
    pub deppred_entries: usize,
    /// Blocks between dependence-predictor clears (§3.5: 10,000).
    pub deppred_clear_blocks: u64,
    /// Disable the dependence predictor entirely (ablation): loads
    /// always issue aggressively.
    pub deppred_disabled: bool,
    /// Load/store queue entries per DT (replicated ×4, §3.5: 256).
    pub lsq_entries: usize,
    /// Outstanding miss lines per DT MSHR (§3.5: 4).
    pub mshr_lines: usize,
    /// Cycles of next-block prediction in the fetch pipeline (§4.1: 3).
    pub predict_lat: u64,
    /// Cycles of I-TLB + tag access + hit/miss detection (§4.1: 2).
    pub tag_lat: u64,
    /// Architectural register writes committed per RT per cycle.
    pub commit_bw: usize,
    /// The next-block predictor.
    pub predictor: PredictorConfig,
    /// Record the critical-path event graph (costs memory and time).
    pub critpath: bool,
    /// Maximum in-flight frames to use (≤ 8); 1 disables speculation.
    pub max_frames: usize,
    /// Clock-gate the tick scheduler: tiles and micronets whose
    /// [`active`](crate::Processor) predicate is false are skipped
    /// entirely. Gating is an host-side optimization only — gated and
    /// ungated runs are bit-identical in statistics and architectural
    /// state (enforced by the `gating_equivalence` test suite); the
    /// switch exists so that equivalence can be tested.
    pub gate_ticks: bool,
    /// Fast-forward over epochs in which no tile, micronet, or memory
    /// event can occur: when the activity scan finds nothing runnable
    /// *now* but a future wake exists, the cycle counter jumps
    /// straight to it. Requires `gate_ticks` (the scan is the gate);
    /// skipped cycles count as gated in [`GatingStats`], and — like
    /// gating — skipping is bit-identical in statistics and
    /// architectural state (enforced by `gating_equivalence`). The
    /// switch exists so that equivalence can be tested cycle-by-cycle
    /// against the skipping schedule.
    ///
    /// [`GatingStats`]: crate::GatingStats
    pub skip_epochs: bool,
    /// Maintain dirty-frame work lists in the tile tick hot paths:
    /// the RTs, DTs, and ETs keep compact bitmasks of frames with
    /// actionable state (ready stations, pending deliveries,
    /// committing drains), maintained at the mutation sites, so the
    /// per-cycle frame loops visit only frames that can progress
    /// instead of all `NUM_FRAMES`. A skipped frame is provably inert
    /// (nothing mutated it since its last fruitless visit — see
    /// DESIGN.md §5b), so work-list and full-scan schedules are
    /// bit-identical in statistics and architectural state (enforced
    /// by `gating_equivalence`); the switch exists so that equivalence
    /// can be tested.
    pub work_lists: bool,
    /// Run the GT's fused tick: one pass over the in-flight frames in
    /// age order (completion check, commit issue, dealloc) plus one
    /// pass over the chain heads, instead of six sequential
    /// frame-table walks. The fused order is bit-identical to the
    /// phased order in statistics and architectural state (derivation
    /// in DESIGN.md §5b; enforced by `gating_equivalence` and the
    /// differential fuzz axis); the switch exists so that equivalence
    /// can be tested.
    pub fused_gt: bool,
    /// Timing-only fault plan for protocol fuzzing. `None` (the
    /// default) leaves every fault hook uninstalled; the run is then
    /// bit-identical to a build without the hooks (enforced by the
    /// `fault_injection` zero-overhead suite).
    pub faults: Option<FaultPlan>,
    /// Check the protocol invariants every cycle and after the run
    /// drains ([`crate::invariants`]). Off by default: the checks walk
    /// all tile state each tick and exist for the fuzzing harness, not
    /// the measurement paths.
    pub check_invariants: bool,
}

impl CoreConfig {
    /// The TRIPS prototype configuration of the paper.
    pub fn prototype() -> CoreConfig {
        CoreConfig {
            opn_networks: 1,
            opn_fifo: 4,
            l1d_sets: 64,
            l1d_ways: 2,
            l1d_hit_lat: 2,
            mem_backend: MemBackend::prototype(),
            int_lat: 1,
            mul_lat: 3,
            div_lat: 24,
            fp_lat: 4,
            fdiv_lat: 24,
            deppred_entries: 1024,
            deppred_clear_blocks: 10_000,
            deppred_disabled: false,
            lsq_entries: 256,
            mshr_lines: 4,
            predict_lat: 3,
            tag_lat: 2,
            commit_bw: 1,
            predictor: PredictorConfig::prototype(),
            critpath: false,
            max_frames: NUM_FRAMES,
            gate_ticks: true,
            skip_epochs: true,
            work_lists: true,
            fused_gt: true,
            faults: None,
            check_invariants: false,
        }
    }

    /// The prototype with critical-path recording on (for Table 3).
    pub fn prototype_critpath() -> CoreConfig {
        CoreConfig { critpath: true, ..CoreConfig::prototype() }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_parameters() {
        let c = CoreConfig::prototype();
        assert_eq!(c.l1d_sets * c.l1d_ways * 64, 8 * 1024, "8KB L1D bank");
        assert_eq!(c.div_lat, 24);
        assert_eq!(c.deppred_entries, 1024);
        assert_eq!(c.deppred_clear_blocks, 10_000);
        assert_eq!(c.lsq_entries, 256);
        assert_eq!(c.max_frames, 8);
        assert_eq!(c.predict_lat + c.tag_lat, 5, "front of the 13-cycle fetch pipe");
    }

    #[test]
    fn default_backend_is_the_perfect_l2() {
        assert_eq!(
            CoreConfig::prototype().mem_backend,
            MemBackend::PerfectL2 { latency: 12 },
            "Table 3 isolates core effects behind a 12-cycle perfect L2"
        );
        let MemBackend::Nuca(mc) = MemBackend::nuca_prototype() else {
            panic!("nuca_prototype must select the NUCA system");
        };
        assert_eq!(mc.banks * mc.bank_kb, 1024, "1 MB secondary system");
    }
}
