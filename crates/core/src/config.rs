//! Configuration of the processor core model.

use trips_mem::MemConfig;

use crate::fault::FaultPlan;
use crate::msg::TileId;

/// Number of ET rows/columns in the **prototype** (the die the paper
/// built). Runtime sizing goes through [`CoreGeometry`]; these consts
/// remain as the prototype's pinned values — the bit-identity anchor
/// the `gating_equivalence` geometry gate checks
/// [`CoreGeometry::prototype`] against.
pub const ET_ROWS: usize = 4;
/// ET columns per row (prototype).
pub const ET_COLS: usize = 4;
/// Register tiles (= register banks, prototype).
pub const NUM_RTS: usize = 4;
/// Data tiles (= L1D banks, prototype).
pub const NUM_DTS: usize = 4;
/// Instruction tiles (header + four body chunks, prototype).
pub const NUM_ITS: usize = 5;
/// In-flight block frames (prototype).
pub const NUM_FRAMES: usize = 8;
/// Reservation stations per ET per frame (prototype).
pub const RS_PER_FRAME: usize = 8;

/// Hard ceiling on [`CoreGeometry::frames`], sized so a frame set
/// always fits a [`FrameMask`] and the fixed-size generation arrays
/// carried by GCN flush waves.
pub const MAX_FRAMES: usize = 16;

/// A set of frame indices (bit `i` = frame `i`). Wide enough for any
/// legal [`CoreGeometry::frames`] (≤ [`MAX_FRAMES`]); the prototype
/// uses the low 8 bits, so every prototype mask value is numerically
/// identical to the old `u8` masks — the widening is inert (DESIGN.md
/// §5f).
pub type FrameMask = u16;

/// A set of reservation-station slots within one ET frame. Wide
/// enough for any legal [`CoreGeometry::rs_per_frame`] (≤ 32).
pub type StationMask = u32;

/// A set of tile-tick slots for the activity scan (bit layout per
/// [`CoreGeometry::tile_ticks`]). An 8×8 array needs 86 bits
/// (1 GT + 9 ITs + 4 RTs + 64 ETs + 8 DTs).
pub type TileMask = u128;

/// The mask selecting every frame of a `frames`-deep frame file (bit
/// `i` set for `i < frames`). Computed by shifting `MAX` down rather
/// than `1` up because `frames == MAX_FRAMES` fills the whole
/// [`FrameMask`]: `(1 << 16) - 1` on a u16 is a shift by the type
/// width — a debug-build panic and release-build garbage.
pub fn all_frames_mask(frames: usize) -> FrameMask {
    debug_assert!((1..=MAX_FRAMES).contains(&frames));
    FrameMask::MAX >> (FrameMask::BITS as usize - frames)
}

/// Runtime-parameterized core geometry: the ET array, the frame file,
/// and the LSQ — everything Table 1 and the tick loop size from.
///
/// The block format is ISA-fixed (128 instructions, 32 header
/// read/write slots, 32 LSIDs, 128 architectural registers in four
/// encoding banks); the geometry decides how those architectural
/// resources are *folded onto hardware tiles*:
///
/// * `et_rows × et_cols` execution tiles, each holding
///   `128 / (et_rows * et_cols)` instructions of every block
///   (`rs_per_frame` reservation stations per frame).
/// * One DT per ET row (the DT sits at the head of its row's GDN
///   chain) and one body IT per row plus the header IT, so
///   `num_dts = et_rows` and `num_its = et_rows + 1`.
/// * `min(et_cols, 4)` register tiles on the top mesh row. The RT
///   count is capped at 4 because the ISA's header-slot banking is
///   4-wide: slot `s` may only name a register of encoding bank
///   `s / 8`, so hardware banking finer than the encoding's would
///   split a slot from its register.
/// * An `(et_rows + 1) × (et_cols + 1)` OPN mesh (the perimeter row 0
///   / column 0 carry the GT, RTs, and DTs, as in Figure 2).
///
/// [`CoreGeometry::prototype`] reproduces today's constants exactly
/// and is pinned bit-identical by the equivalence gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreGeometry {
    /// ET rows (1..=8, power of two).
    pub et_rows: usize,
    /// ET columns (1..=8, power of two).
    pub et_cols: usize,
    /// In-flight block frames (1..=[`MAX_FRAMES`]).
    pub frames: usize,
    /// Reservation stations per ET per frame; must equal
    /// `128 / (et_rows * et_cols)` (a frame holds exactly one block).
    pub rs_per_frame: usize,
    /// Load/store queue entries per DT (area model + config wiring).
    pub lsq_depth: usize,
}

impl CoreGeometry {
    /// The prototype geometry of the paper: 4×4 ETs, 8 frames, 8
    /// reservation stations per frame, 256-entry LSQs.
    pub fn prototype() -> CoreGeometry {
        CoreGeometry { et_rows: 4, et_cols: 4, frames: 8, rs_per_frame: 8, lsq_depth: 256 }
    }

    /// The blessed CI fast-lane geometry: a 2×2 ET array with 4
    /// frames — 13 tile ticks per cycle instead of 30 and half the
    /// speculation depth, making a full tier-1 pass much cheaper than
    /// prototype while exercising every protocol.
    pub fn mini() -> CoreGeometry {
        CoreGeometry { et_rows: 2, et_cols: 2, frames: 4, rs_per_frame: 32, lsq_depth: 64 }
    }

    /// The scaled-up sweep point: an 8×8 ET array with 16 frames.
    pub fn fat() -> CoreGeometry {
        CoreGeometry { et_rows: 8, et_cols: 8, frames: 16, rs_per_frame: 2, lsq_depth: 512 }
    }

    /// The geometry selected by the `TRIPS_GEOMETRY` environment
    /// variable (`prototype`, `mini`, `fat`, or `RxC/F` such as
    /// `2x4/8`), defaulting to [`CoreGeometry::prototype`] when unset.
    /// Read once per process; the CI mini-gate sets it for a whole
    /// `cargo test` run.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but does not parse or validate
    /// — a misconfigured gate must fail loudly, not silently run the
    /// wrong die.
    pub fn from_env() -> CoreGeometry {
        static CHOICE: std::sync::OnceLock<CoreGeometry> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("TRIPS_GEOMETRY") {
            Err(_) => CoreGeometry::prototype(),
            Ok(s) => CoreGeometry::parse(&s).unwrap_or_else(|e| panic!("TRIPS_GEOMETRY={s}: {e}")),
        })
    }

    /// Parses a geometry name (`prototype`, `mini`, `fat`) or a
    /// custom `RxC/F` spec (rows×cols ETs, `F` frames; `rs_per_frame`
    /// and `lsq_depth` derived). A spec matching a blessed point's
    /// dims and frames canonicalizes to that point, so `8x8/16` is
    /// exactly [`CoreGeometry::fat`].
    ///
    /// # Errors
    ///
    /// A description of the parse or validation failure.
    pub fn parse(s: &str) -> Result<CoreGeometry, String> {
        let g = match s {
            "prototype" => CoreGeometry::prototype(),
            "mini" => CoreGeometry::mini(),
            "fat" => CoreGeometry::fat(),
            custom => {
                let (dims, frames) = custom
                    .split_once('/')
                    .ok_or_else(|| format!("bad geometry spec {custom:?}"))?;
                let (r, c) =
                    dims.split_once('x').ok_or_else(|| format!("bad geometry spec {custom:?}"))?;
                let et_rows: usize = r.parse().map_err(|_| format!("bad rows {r:?}"))?;
                let et_cols: usize = c.parse().map_err(|_| format!("bad cols {c:?}"))?;
                let frames: usize = frames.parse().map_err(|_| format!("bad frames {frames:?}"))?;
                let ets = et_rows * et_cols;
                if ets == 0 {
                    return Err("zero-sized ET array".into());
                }
                let derived = CoreGeometry {
                    et_rows,
                    et_cols,
                    frames,
                    rs_per_frame: 128 / ets,
                    lsq_depth: (256 * ets / 16).max(16),
                };
                // A spec naming a blessed die *is* that die: the
                // blessed points pin lsq_depth (fat caps it at 512
                // where the linear derivation would say 1024), and a
                // spelled-out `8x8/16` must reproduce the swept
                // configuration, not a near-miss of it.
                [CoreGeometry::mini(), CoreGeometry::prototype(), CoreGeometry::fat()]
                    .into_iter()
                    .find(|b| {
                        (b.et_rows, b.et_cols, b.frames)
                            == (derived.et_rows, derived.et_cols, derived.frames)
                    })
                    .unwrap_or(derived)
            }
        };
        g.validate()?;
        Ok(g)
    }

    /// The blessed name of this geometry, for reports and failure
    /// artifacts (`mini` / `prototype` / `fat`, else `RxC/F`).
    pub fn name(&self) -> String {
        if *self == CoreGeometry::prototype() {
            "prototype".into()
        } else if *self == CoreGeometry::mini() {
            "mini".into()
        } else if *self == CoreGeometry::fat() {
            "fat".into()
        } else {
            format!("{}x{}/{}", self.et_rows, self.et_cols, self.frames)
        }
    }

    /// Checks the structural constraints the tile protocols assume.
    ///
    /// # Errors
    ///
    /// A description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let ok_dim = |d: usize| (1..=8).contains(&d) && d.is_power_of_two();
        if !ok_dim(self.et_rows) || !ok_dim(self.et_cols) {
            return Err(format!(
                "ET array {}x{} must have power-of-two dims in 1..=8",
                self.et_rows, self.et_cols
            ));
        }
        let ets = self.et_rows * self.et_cols;
        if ets < 4 {
            return Err(format!(
                "{ets} ETs hold {} instructions each; stations per frame are capped at 32",
                128 / ets
            ));
        }
        if self.rs_per_frame * ets != 128 {
            return Err(format!(
                "rs_per_frame {} * {ets} ETs != 128 (a frame holds exactly one block)",
                self.rs_per_frame
            ));
        }
        if self.frames == 0 || self.frames > MAX_FRAMES {
            return Err(format!("frames {} outside 1..={MAX_FRAMES}", self.frames));
        }
        if self.lsq_depth == 0 {
            return Err("zero-entry LSQ".into());
        }
        Ok(())
    }

    // ---- derived tile counts ----

    /// Execution tiles.
    pub fn num_ets(&self) -> usize {
        self.et_rows * self.et_cols
    }

    /// Register tiles: one per ET column, capped at the ISA's 4-wide
    /// header-slot banking (see the type docs).
    pub fn num_rts(&self) -> usize {
        self.et_cols.min(4)
    }

    /// Data tiles: one per ET row.
    pub fn num_dts(&self) -> usize {
        self.et_rows
    }

    /// Instruction tiles: the header IT plus one per ET row.
    pub fn num_its(&self) -> usize {
        self.et_rows + 1
    }

    /// OPN mesh rows (ET rows plus the GT/RT perimeter row).
    pub fn mesh_rows(&self) -> usize {
        self.et_rows + 1
    }

    /// OPN mesh columns (ET columns plus the DT perimeter column).
    pub fn mesh_cols(&self) -> usize {
        self.et_cols + 1
    }

    // ---- block-onto-tiles folding ----

    /// Block-body instructions per ET row (one body IT's slice).
    pub fn insts_per_row(&self) -> usize {
        128 / self.et_rows
    }

    /// Dispatch beats per block: each body IT streams its slice at
    /// `et_cols` instructions per beat, so `insts_per_row / et_cols`
    /// (= `rs_per_frame`; 8 on the prototype).
    pub fn beats(&self) -> usize {
        self.insts_per_row() / self.et_cols
    }

    /// Header read/write slots the header IT issues per beat
    /// (4 on the prototype).
    pub fn header_slots_per_beat(&self) -> usize {
        32 / self.beats()
    }

    /// Header read/write slots homed at each RT (8 on the prototype).
    pub fn slots_per_rt(&self) -> usize {
        32 / self.num_rts()
    }

    /// Architectural registers homed at each RT (32 on the prototype).
    pub fn regs_per_bank(&self) -> usize {
        128 / self.num_rts()
    }

    /// The (row, col, station-slot) placement of block-body
    /// instruction `idx`: row `idx / insts_per_row`; within the slice,
    /// instruction `p` goes to column `p % et_cols`, slot
    /// `p / et_cols` — the prototype's chunk striping generalized
    /// (4×4 recovers `InstSlot::from_index` exactly).
    pub fn inst_place(&self, idx: u8) -> (u8, u8, u8) {
        let ipr = self.insts_per_row();
        let p = idx as usize % ipr;
        ((idx as usize / ipr) as u8, (p % self.et_cols) as u8, (p / self.et_cols) as u8)
    }

    /// The ET hosting block-body instruction `idx`.
    pub fn tile_of_inst(&self, idx: u8) -> TileId {
        let (r, c, _) = self.inst_place(idx);
        TileId::Et(r, c)
    }

    /// The reservation-station slot of block-body instruction `idx`
    /// within its ET.
    pub fn inst_slot(&self, idx: u8) -> usize {
        self.inst_place(idx).2 as usize
    }

    /// The RT hosting header read/write slot `slot`.
    pub fn tile_of_header_slot(&self, slot: u8) -> TileId {
        TileId::Rt(slot / self.slots_per_rt() as u8)
    }

    /// The DT owning byte address `ea` (cache lines interleave across
    /// the DTs at 64-byte granularity, §3.5).
    pub fn tile_of_addr(&self, ea: u64) -> TileId {
        TileId::Dt(((ea >> 6) % self.num_dts() as u64) as u8)
    }

    /// The DT that owns LSID `lsid`'s queue entry for requests with
    /// no address (nullified stores).
    pub fn dt_of_lsid(&self, lsid: u8) -> u8 {
        lsid % self.num_dts() as u8
    }

    /// The hardware register bank (RT index) holding register `r`.
    /// For the prototype this is `ArchReg::bank`; with fewer RTs,
    /// whole encoding banks fold together, so a header slot and the
    /// register it names always land on the same RT.
    pub fn reg_bank(&self, r: u8) -> usize {
        r as usize / self.regs_per_bank()
    }

    /// The index of register `r` within its hardware bank.
    pub fn reg_index(&self, r: u8) -> usize {
        r as usize % self.regs_per_bank()
    }

    // ---- tick-mask layout (activity scan) ----

    /// Tile ticks per cycle: GT + ITs + RTs + ETs + DTs.
    pub fn tile_ticks(&self) -> usize {
        1 + self.num_its() + self.num_rts() + self.num_ets() + self.num_dts()
    }

    /// First activity-mask bit of the ITs (the GT holds bit 0).
    pub fn it_bit(&self) -> u32 {
        1
    }

    /// First activity-mask bit of the RTs.
    pub fn rt_bit(&self) -> u32 {
        self.it_bit() + self.num_its() as u32
    }

    /// First activity-mask bit of the ETs.
    pub fn et_bit(&self) -> u32 {
        self.rt_bit() + self.num_rts() as u32
    }

    /// First activity-mask bit of the DTs.
    pub fn dt_bit(&self) -> u32 {
        self.et_bit() + self.num_ets() as u32
    }

    /// The all-tiles activity mask.
    pub fn full_mask(&self) -> TileMask {
        (1 << self.tile_ticks()) - 1
    }

    // ---- GCN wave positions ----

    /// GCN chain length (every routed tile: GT, RTs, DTs, ETs).
    pub fn gcn_len(&self) -> usize {
        1 + self.num_rts() + self.num_dts() + self.num_ets()
    }

    /// GCN position of a routed tile (0 = GT, then RTs, DTs, ETs
    /// row-major — the prototype's 0 / 1..=4 / 5..=8 / 9..=24 map).
    pub fn gcn_pos(&self, tile: TileId) -> usize {
        match tile {
            TileId::Gt => 0,
            TileId::Rt(b) => 1 + b as usize,
            TileId::Dt(d) => 1 + self.num_rts() + d as usize,
            TileId::Et(r, c) => {
                1 + self.num_rts() + self.num_dts() + r as usize * self.et_cols + c as usize
            }
        }
    }
}

/// Next-block predictor sizing (§3.1: a tournament local/gshare exit
/// predictor plus a BTB/CTB/RAS/type target predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the local exit predictor (paper: 9K bits).
    pub local_entries: usize,
    /// Entries in the gshare exit predictor (paper: 16K bits).
    pub gshare_entries: usize,
    /// Entries in the tournament chooser (paper: 12K bits).
    pub chooser_entries: usize,
    /// Exits of history used by gshare (3 bits each).
    pub history_exits: usize,
    /// Branch target buffer entries (paper: 20K bits).
    pub btb_entries: usize,
    /// Call target buffer entries (paper: 6K bits).
    pub ctb_entries: usize,
    /// Return address stack depth (paper: 7K bits).
    pub ras_entries: usize,
    /// Branch type predictor entries (paper: 12K bits).
    pub btype_entries: usize,
}

impl PredictorConfig {
    /// The prototype's sizing.
    pub fn prototype() -> PredictorConfig {
        PredictorConfig {
            local_entries: 1024,
            gshare_entries: 4096,
            chooser_entries: 4096,
            history_exits: 8,
            btb_entries: 512,
            ctb_entries: 128,
            ras_entries: 128,
            btype_entries: 4096,
        }
    }

    /// A degenerate predictor for ablations: always predicts the
    /// sequential next block.
    pub fn sequential_only() -> PredictorConfig {
        PredictorConfig {
            local_entries: 1,
            gshare_entries: 1,
            chooser_entries: 1,
            history_exits: 1,
            btb_entries: 1,
            ctb_entries: 1,
            ras_entries: 1,
            btype_entries: 1,
        }
    }
}

/// The secondary memory system behind the L1 banks.
///
/// Both variants serve the same two request streams — DT MSHR fills
/// and IT I-cache refills — and only ever change *when* a fill
/// completes, never what a load returns (load values come from the
/// core's memory image at execute time, see DESIGN.md §5d), so the
/// backend choice cannot affect architectural results.
#[derive(Debug, Clone, PartialEq)]
pub enum MemBackend {
    /// A perfect L2: every miss fills after a flat `latency`, as the
    /// paper's Table 3 runs do to isolate core effects. The default;
    /// bit-identical to the pre-backend model (pinned by the
    /// `mem_backend` equivalence suite).
    PerfectL2 {
        /// Fill latency in cycles for I-side refills and D-side misses.
        latency: u64,
    },
    /// The §3.6 NUCA secondary system: requests travel the 4×10
    /// wormhole OCN to sixteen cache banks
    /// ([`trips_mem::SecondarySystem`]), ticked in lockstep with the
    /// core. Store commits additionally issue line writebacks whose
    /// acknowledgements gate commit completion (the ESN's role in the
    /// hardware).
    Nuca(MemConfig),
}

impl MemBackend {
    /// The prototype default: a perfect L2 with the 12-cycle fill the
    /// paper's Table 3 runs use.
    pub fn prototype() -> MemBackend {
        MemBackend::PerfectL2 { latency: 12 }
    }

    /// The NUCA backend in its prototype configuration.
    pub fn nuca_prototype() -> MemBackend {
        MemBackend::Nuca(MemConfig::prototype())
    }
}

/// Full configuration of the core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// The tile-array geometry (ET array, frame file, LSQ depth).
    /// [`CoreGeometry::prototype`] is the paper's die; `lsq_entries`
    /// and `max_frames` below must stay within what the geometry
    /// provides.
    pub geometry: CoreGeometry,
    /// Parallel operand networks (1 in the prototype; 2 models the
    /// "more operand network bandwidth" extension of §7).
    pub opn_networks: usize,
    /// OPN router input-FIFO depth.
    pub opn_fifo: usize,
    /// L1D sets per DT bank (8 KB, 2-way, 64 B lines = 64 sets).
    pub l1d_sets: usize,
    /// L1D associativity.
    pub l1d_ways: usize,
    /// L1D hit latency in cycles.
    pub l1d_hit_lat: u64,
    /// The secondary memory system serving I-side refills and D-side
    /// misses (a perfect flat-latency L2 by default, or the §3.6 NUCA
    /// system).
    pub mem_backend: MemBackend,
    /// Integer ALU latency.
    pub int_lat: u64,
    /// Integer multiply latency (pipelined).
    pub mul_lat: u64,
    /// Integer divide latency (unpipelined, §3.4: 24 cycles).
    pub div_lat: u64,
    /// FP add/mul/compare latency (pipelined).
    pub fp_lat: u64,
    /// FP divide/sqrt latency (unpipelined).
    pub fdiv_lat: u64,
    /// Dependence predictor entries (§3.5: 1024-entry bit vector).
    pub deppred_entries: usize,
    /// Blocks between dependence-predictor clears (§3.5: 10,000).
    pub deppred_clear_blocks: u64,
    /// Disable the dependence predictor entirely (ablation): loads
    /// always issue aggressively.
    pub deppred_disabled: bool,
    /// Load/store queue entries per DT (replicated per bank, §3.5:
    /// 256; follows [`CoreGeometry::lsq_depth`]).
    pub lsq_entries: usize,
    /// Outstanding miss lines per DT MSHR (§3.5: 4).
    pub mshr_lines: usize,
    /// Cycles of next-block prediction in the fetch pipeline (§4.1: 3).
    pub predict_lat: u64,
    /// Cycles of I-TLB + tag access + hit/miss detection (§4.1: 2).
    pub tag_lat: u64,
    /// Architectural register writes committed per RT per cycle.
    pub commit_bw: usize,
    /// The next-block predictor.
    pub predictor: PredictorConfig,
    /// Record the critical-path event graph (costs memory and time).
    pub critpath: bool,
    /// Maximum in-flight frames to use (≤ [`CoreGeometry::frames`]);
    /// 1 disables speculation.
    pub max_frames: usize,
    /// Clock-gate the tick scheduler: tiles and micronets whose
    /// [`active`](crate::Processor) predicate is false are skipped
    /// entirely. Gating is an host-side optimization only — gated and
    /// ungated runs are bit-identical in statistics and architectural
    /// state (enforced by the `gating_equivalence` test suite); the
    /// switch exists so that equivalence can be tested.
    pub gate_ticks: bool,
    /// Fast-forward over epochs in which no tile, micronet, or memory
    /// event can occur: when the activity scan finds nothing runnable
    /// *now* but a future wake exists, the cycle counter jumps
    /// straight to it. Requires `gate_ticks` (the scan is the gate);
    /// skipped cycles count as gated in [`GatingStats`], and — like
    /// gating — skipping is bit-identical in statistics and
    /// architectural state (enforced by `gating_equivalence`). The
    /// switch exists so that equivalence can be tested cycle-by-cycle
    /// against the skipping schedule.
    ///
    /// [`GatingStats`]: crate::GatingStats
    pub skip_epochs: bool,
    /// Maintain dirty-frame work lists in the tile tick hot paths:
    /// the RTs, DTs, and ETs keep compact bitmasks of frames with
    /// actionable state (ready stations, pending deliveries,
    /// committing drains), maintained at the mutation sites, so the
    /// per-cycle frame loops visit only frames that can progress
    /// instead of all `NUM_FRAMES`. A skipped frame is provably inert
    /// (nothing mutated it since its last fruitless visit — see
    /// DESIGN.md §5b), so work-list and full-scan schedules are
    /// bit-identical in statistics and architectural state (enforced
    /// by `gating_equivalence`); the switch exists so that equivalence
    /// can be tested.
    pub work_lists: bool,
    /// Run the GT's fused tick: one pass over the in-flight frames in
    /// age order (completion check, commit issue, dealloc) plus one
    /// pass over the chain heads, instead of six sequential
    /// frame-table walks. The fused order is bit-identical to the
    /// phased order in statistics and architectural state (derivation
    /// in DESIGN.md §5b; enforced by `gating_equivalence` and the
    /// differential fuzz axis); the switch exists so that equivalence
    /// can be tested.
    pub fused_gt: bool,
    /// Timing-only fault plan for protocol fuzzing. `None` (the
    /// default) leaves every fault hook uninstalled; the run is then
    /// bit-identical to a build without the hooks (enforced by the
    /// `fault_injection` zero-overhead suite).
    pub faults: Option<FaultPlan>,
    /// Check the protocol invariants every cycle and after the run
    /// drains ([`crate::invariants`]). Off by default: the checks walk
    /// all tile state each tick and exist for the fuzzing harness, not
    /// the measurement paths.
    pub check_invariants: bool,
}

impl CoreConfig {
    /// The configuration selected by `TRIPS_GEOMETRY` (the prototype
    /// when unset — see [`CoreGeometry::from_env`]). Everything that
    /// constructs "the default core" goes through here, so the CI
    /// mini-gate can retarget the whole suite with one variable.
    pub fn prototype() -> CoreConfig {
        CoreConfig::with_geometry(CoreGeometry::from_env())
    }

    /// The prototype die, regardless of environment — for tests and
    /// baselines that pin the paper's absolute numbers.
    pub fn prototype_pinned() -> CoreConfig {
        CoreConfig::with_geometry(CoreGeometry::prototype())
    }

    /// The TRIPS prototype configuration of the paper, resized to the
    /// given tile-array geometry (frame count and LSQ depth follow the
    /// geometry; latencies, predictors, and host-side optimization
    /// gates are unchanged).
    pub fn with_geometry(geometry: CoreGeometry) -> CoreConfig {
        geometry.validate().expect("invalid CoreGeometry");
        CoreConfig {
            geometry,
            opn_networks: 1,
            opn_fifo: 4,
            l1d_sets: 64,
            l1d_ways: 2,
            l1d_hit_lat: 2,
            mem_backend: MemBackend::prototype(),
            int_lat: 1,
            mul_lat: 3,
            div_lat: 24,
            fp_lat: 4,
            fdiv_lat: 24,
            deppred_entries: 1024,
            deppred_clear_blocks: 10_000,
            deppred_disabled: false,
            lsq_entries: geometry.lsq_depth,
            mshr_lines: 4,
            predict_lat: 3,
            tag_lat: 2,
            commit_bw: 1,
            predictor: PredictorConfig::prototype(),
            critpath: false,
            max_frames: geometry.frames,
            gate_ticks: true,
            skip_epochs: true,
            work_lists: true,
            fused_gt: true,
            faults: None,
            check_invariants: false,
        }
    }

    /// The prototype with critical-path recording on (for Table 3).
    pub fn prototype_critpath() -> CoreConfig {
        CoreConfig { critpath: true, ..CoreConfig::prototype() }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_parameters() {
        let c = CoreConfig::prototype_pinned();
        assert_eq!(c.l1d_sets * c.l1d_ways * 64, 8 * 1024, "8KB L1D bank");
        assert_eq!(c.div_lat, 24);
        assert_eq!(c.deppred_entries, 1024);
        assert_eq!(c.deppred_clear_blocks, 10_000);
        assert_eq!(c.lsq_entries, 256);
        assert_eq!(c.max_frames, 8);
        assert_eq!(c.predict_lat + c.tag_lat, 5, "front of the 13-cycle fetch pipe");
    }

    #[test]
    fn prototype_geometry_reproduces_the_constants() {
        let g = CoreGeometry::prototype();
        g.validate().unwrap();
        assert_eq!((g.et_rows, g.et_cols), (ET_ROWS, ET_COLS));
        assert_eq!(g.num_rts(), NUM_RTS);
        assert_eq!(g.num_dts(), NUM_DTS);
        assert_eq!(g.num_its(), NUM_ITS);
        assert_eq!(g.frames, NUM_FRAMES);
        assert_eq!(g.rs_per_frame, RS_PER_FRAME);
        assert_eq!((g.mesh_rows(), g.mesh_cols()), (5, 5));
        assert_eq!(g.beats(), 8);
        assert_eq!(g.header_slots_per_beat(), 4);
        assert_eq!(g.slots_per_rt(), 8);
        assert_eq!(g.regs_per_bank(), 32);
        assert_eq!(g.tile_ticks(), 30);
        assert_eq!(g.gcn_len(), 25);
        assert_eq!(g.full_mask(), (1 << 30) - 1);
    }

    #[test]
    fn prototype_placement_matches_the_isa_striping() {
        // The generalized folding must recover `InstSlot::from_index`
        // and `ArchReg::bank` exactly on the prototype — the whole
        // bit-identity argument rests on this.
        let g = CoreGeometry::prototype();
        for idx in 0..128u8 {
            let s = trips_isa::InstSlot::from_index(idx);
            assert_eq!(g.inst_place(idx), (s.et.row, s.et.col, s.slot), "inst {idx}");
        }
        for r in 0..128u8 {
            let a = trips_isa::ArchReg::new(r);
            assert_eq!(g.reg_bank(r), a.bank() as usize, "reg {r}");
            assert_eq!(g.reg_index(r), a.index_in_bank() as usize, "reg {r}");
        }
        for slot in 0..32u8 {
            assert_eq!(g.tile_of_header_slot(slot), TileId::Rt(slot / 8));
        }
    }

    #[test]
    fn every_geometry_folds_a_whole_block() {
        for g in [
            CoreGeometry::mini(),
            CoreGeometry::prototype(),
            CoreGeometry::fat(),
            CoreGeometry::parse("2x4/8").unwrap(),
            CoreGeometry::parse("4x2/8").unwrap(),
            CoreGeometry::parse("8x2/4").unwrap(),
        ] {
            g.validate().unwrap();
            // Placement is a bijection 0..128 → (row, col, slot).
            let mut seen = std::collections::HashSet::new();
            for idx in 0..128u8 {
                let (r, c, s) = g.inst_place(idx);
                assert!((r as usize) < g.et_rows && (c as usize) < g.et_cols);
                assert!((s as usize) < g.rs_per_frame);
                assert!(seen.insert((r, c, s)), "{} double-books {r},{c},{s}", g.name());
            }
            // A header slot's RT owns the registers the ISA lets the
            // slot name (encoding bank slot/8 folds into the RT bank).
            for slot in 0..32u8 {
                let TileId::Rt(rt) = g.tile_of_header_slot(slot) else { panic!() };
                let bank = trips_isa::read_slot_bank(slot);
                for gr in 0..32u8 {
                    let reg = trips_isa::ArchReg::from_bank_index(bank, gr);
                    assert_eq!(g.reg_bank(reg.num()), rt as usize, "{} slot {slot}", g.name());
                }
            }
            // Dispatch beats cover the header slots exactly.
            assert_eq!(g.beats() * g.header_slots_per_beat(), 32);
            assert_eq!(g.beats() * g.et_cols, g.insts_per_row());
        }
    }

    #[test]
    fn all_frames_mask_covers_every_legal_depth() {
        // The MAX_FRAMES point fills the whole FrameMask — the naive
        // `(1 << frames) - 1` overflows there (the fat die).
        assert_eq!(all_frames_mask(1), 0b1);
        assert_eq!(all_frames_mask(NUM_FRAMES), 0xff);
        assert_eq!(all_frames_mask(MAX_FRAMES), FrameMask::MAX);
        for frames in 1..=MAX_FRAMES {
            assert_eq!(all_frames_mask(frames).count_ones() as usize, frames);
        }
    }

    #[test]
    fn geometry_parser_round_trips_the_blessed_names() {
        for name in ["mini", "prototype", "fat"] {
            assert_eq!(CoreGeometry::parse(name).unwrap().name(), name);
        }
        // A spec spelling out a blessed die's dims/frames canonicalizes
        // to that die — same lsq_depth, round-tripping name() — so
        // TRIPS_GEOMETRY=8x8/16 reproduces the swept fat point whose
        // lsq_depth (512) differs from the linear derivation (1024).
        assert_eq!(CoreGeometry::parse("2x2/4").unwrap(), CoreGeometry::mini());
        assert_eq!(CoreGeometry::parse("4x4/8").unwrap(), CoreGeometry::prototype());
        assert_eq!(CoreGeometry::parse("8x8/16").unwrap(), CoreGeometry::fat());
        assert_eq!(CoreGeometry::parse("8x8/16").unwrap().name(), "fat");
        assert!(CoreGeometry::parse("3x3/8").is_err(), "non-power-of-two dims");
        assert!(CoreGeometry::parse("1x2/8").is_err(), "needs ≥4 ETs");
        assert!(CoreGeometry::parse("4x4/0").is_err(), "zero frames");
        assert!(CoreGeometry::parse("16x16/8").is_err(), "dims capped at 8");
        assert!(CoreGeometry::parse("junk").is_err());
    }

    #[test]
    fn default_backend_is_the_perfect_l2() {
        assert_eq!(
            CoreConfig::prototype_pinned().mem_backend,
            MemBackend::PerfectL2 { latency: 12 },
            "Table 3 isolates core effects behind a 12-cycle perfect L2"
        );
        let MemBackend::Nuca(mc) = MemBackend::nuca_prototype() else {
            panic!("nuca_prototype must select the NUCA system");
        };
        assert_eq!(mc.banks * mc.bank_kb, 1024, "1 MB secondary system");
    }
}
