//! Data tiles (§3.5).
//!
//! Each DT holds one 2-way 8 KB L1 data-cache bank (addresses
//! interleave across the four DTs at 64-byte-line granularity), a
//! replicated copy of the 256-entry load/store queue, a memory-side
//! dependence predictor, and an MSHR. Loads issue aggressively unless
//! the dependence predictor holds them back; a later-arriving older
//! store that overlaps a performed younger load raises a
//! memory-ordering violation, which flushes from the load's block and
//! trains the predictor (§3.5). Store arrivals are broadcast on the
//! DSN so every DT can detect store completion against the block's
//! store mask (§4.4).

use trips_isa::mem::SparseMem;
use trips_isa::semantics::{extend_load, Tok};
use trips_isa::{Opcode, Target};

use crate::config::{CoreConfig, CoreGeometry, FrameMask};
use crate::critpath::{Cat, CritPath};
use crate::memsys::{FillPath, MemClient, MemEvent, MemSys};
use crate::msg::{DsnMsg, EvId, FrameId, GcnMsg, Gen, GsnMsg, OpnPayload, RowMsg, TileId};
use crate::nets::{dt_chain_pos, opn_recv, Nets, OpnOutbox};
use crate::stats::CoreStats;
use crate::trace::{TraceKind, Tracer};

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // `ev` kept for trace output
struct StoreRec {
    lsid: u8,
    ea: u64,
    val: u64,
    bytes: u32,
    nullified: bool,
    ev: EvId,
}

#[derive(Debug, Clone, Copy)]
struct LoadRec {
    lsid: u8,
    ea: u64,
    bytes: u32,
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    lsid: u8,
    opcode: Opcode,
    ea: u64,
    target: Target,
    ev: EvId,
}

#[derive(Debug, Default)]
struct DtFrame {
    active: bool,
    in_order: bool,
    gen: Gen,
    mask_known: bool,
    store_mask: u32,
    arrived: u32,
    own_stores: Vec<StoreRec>,
    performed_loads: Vec<LoadRec>,
    deferred: Vec<PendingLoad>,
    pending: Vec<OpnPayload>,
    done_sent: bool,
    done_ev: EvId,
    committing: bool,
    commit_cursor: usize,
    /// All own stores drained through the commit port.
    stores_drained: bool,
    /// Store writebacks awaiting a secondary-system acknowledgement
    /// (always 0 under the perfect backend).
    acks_pending: u32,
    /// Drained *and* acknowledged: this DT's commit work is done.
    commit_done: bool,
    south_ack: bool,
    ack_sent: bool,
}

impl DtFrame {
    /// Reinitializes in place, keeping the record-list allocations
    /// (frame churn is hot; `*f = default()` would free and re-grow
    /// every list on every block).
    fn reset(&mut self, active: bool, gen: Gen, southmost: bool) {
        self.active = active;
        self.in_order = false;
        self.gen = gen;
        self.mask_known = false;
        self.store_mask = 0;
        self.arrived = 0;
        self.own_stores.clear();
        self.performed_loads.clear();
        self.deferred.clear();
        self.pending.clear();
        self.done_sent = false;
        self.done_ev = 0;
        self.committing = false;
        self.commit_cursor = 0;
        self.stores_drained = false;
        self.acks_pending = 0;
        self.commit_done = false;
        self.south_ack = southmost;
        self.ack_sent = false;
    }
}

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // `ea` kept for trace output
struct ExecLoad {
    frame: FrameId,
    gen: Gen,
    opcode: Opcode,
    ea: u64,
    raw: u64,
    target: Target,
    ev: EvId,
}

/// `fill_at` sentinel for an MSHR waiting on a NUCA fill event (the
/// perfect backend always knows the fill cycle up front).
const PENDING_FILL: u64 = u64::MAX;

#[derive(Debug)]
struct Mshr {
    line: u64,
    fill_at: u64,
    waiting: Vec<ExecLoad>,
    /// The line was invalidated while the fill was in flight
    /// (coherent chips only): the fill still completes for timing —
    /// the waiting loads respond — but skips the tag install, so the
    /// cache never holds a line the directory no longer lists.
    poisoned: bool,
}

/// One data tile.
pub struct DataTile {
    /// Tile index (0 is nearest the GT).
    pub index: u8,
    geom: CoreGeometry,
    frames: Vec<DtFrame>,
    order: Vec<FrameId>,
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<u8>,
    deppred: Vec<bool>,
    blocks_since_clear: u64,
    mshrs: Vec<Mshr>,
    respond_q: Vec<(u64, ExecLoad)>,
    outbox: OpnOutbox,
    /// Current LSQ occupancy (own live memory records).
    occupancy: usize,
    /// Bit `fi` set iff `frames[fi]` is active — the dirty-frame work
    /// list for [`DataTile::advance_frames`]'s detection/ack walk.
    /// Maintained at every (de)activation site and audited against
    /// the frames; `cfg.work_lists` only selects which iteration the
    /// tick uses.
    active_mask: FrameMask,
    /// Bit `fi` set iff `frames[fi]` is active, saw its commit wave,
    /// and has not finished its commit work (`committing &&
    /// !commit_done`). Always maintained and always used: with
    /// `deferred_mask` it is the clock-gating predicate's frame term,
    /// which must stay exact or the scheduler sleeps through a drain.
    committing_mask: FrameMask,
    /// Bit `fi` set iff `frames[fi]` is active with a non-empty
    /// deferred-load list. Exact for the same reason: a parked load's
    /// eligibility can flip through this DT's own deallocations, so
    /// the tile must stay clocked while any bit is set.
    deferred_mask: FrameMask,
    /// Frames examined by the advance/wake walks (not in
    /// [`CoreStats`]; host-side observability for the non-vacuousness
    /// tests).
    pub(crate) advance_visits: u64,
}

impl DataTile {
    /// A fresh DT.
    pub fn new(index: u8, cfg: &CoreConfig) -> DataTile {
        DataTile {
            index,
            geom: cfg.geometry,
            frames: (0..cfg.geometry.frames).map(|_| DtFrame::default()).collect(),
            order: Vec::new(),
            tags: vec![vec![None; cfg.l1d_ways]; cfg.l1d_sets],
            lru: vec![0; cfg.l1d_sets],
            deppred: vec![false; cfg.deppred_entries],
            blocks_since_clear: 0,
            mshrs: Vec::with_capacity(cfg.mshr_lines),
            respond_q: Vec::with_capacity(8),
            outbox: OpnOutbox::with_capacity(16),
            occupancy: 0,
            active_mask: 0,
            committing_mask: 0,
            deferred_mask: 0,
            advance_visits: 0,
        }
    }

    /// True when nothing is pending.
    pub fn idle(&self) -> bool {
        self.mshrs.is_empty() && self.respond_q.is_empty() && self.outbox.is_empty()
    }

    /// True while a tick can make progress without a new message: an
    /// MSHR fill, load response, or outbox flush is timed; a commit
    /// drain is underway; or a deferred load is parked. Deferred loads
    /// must keep the tile awake because their eligibility can change
    /// through this DT's *own* frame deallocation in
    /// [`advance_frames`], with no message involved.
    fn busy(&self) -> bool {
        // The two masks hold the old frame scan's predicate
        // (`active && ((committing && !commit_done) || deferred)`)
        // bit by bit, so the busy test — asked by the activity scan
        // every scanned cycle — is a few loads instead of an
        // eight-frame walk.
        !self.idle() || self.committing_mask != 0 || self.deferred_mask != 0
    }

    /// Clock-gating predicate: internal work pending, or a message
    /// bound for this tile on any of its five inbound networks.
    pub fn active(&self, nets: &Nets) -> bool {
        self.busy()
            || nets.gcn.has_pending_at(self.geom.gcn_pos(TileId::Dt(self.index)))
            || nets.gdn_rows[self.index as usize + 1].has_pending_at(1)
            || nets.dsn.has_pending_at(self.index as usize)
            || nets.gsn_dt.has_pending_at(dt_chain_pos(self.index as usize))
            || nets.opn_delivered_at(TileId::Dt(self.index))
    }

    /// The earliest cycle a tick can make progress without a new
    /// message, for the epoch-skipping scheduler: now while the
    /// outbox, a commit drain, or a deferred load needs attention
    /// (deferred loads stay "now" because their eligibility can flip
    /// through this DT's own frame deallocation, with no message);
    /// otherwise the earliest timed MSHR fill or queued load response.
    /// Fills awaiting a NUCA completion event (`PENDING_FILL`) are
    /// message-driven and folded by the activity scan via
    /// `MemSys::has_events`.
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if !self.outbox.is_empty() || self.committing_mask != 0 || self.deferred_mask != 0 {
            return Some(now);
        }
        let mut wake: Option<u64> = None;
        for m in &self.mshrs {
            if m.fill_at != PENDING_FILL {
                wake = Some(wake.map_or(m.fill_at, |w: u64| w.min(m.fill_at)));
            }
        }
        for &(t, _) in &self.respond_q {
            wake = Some(wake.map_or(t, |w: u64| w.min(t)));
        }
        wake.map(|w| w.max(now))
    }

    /// Queued work for the hang diagnoser (`None` when nothing is
    /// held, including deferred loads and parked requests).
    pub fn diag(&self) -> Option<String> {
        let deferred: usize =
            self.frames.iter().filter(|f| f.active).map(|f| f.deferred.len()).sum();
        let parked: usize = self.frames.iter().filter(|f| f.active).map(|f| f.pending.len()).sum();
        if self.idle() && deferred == 0 && parked == 0 {
            return None;
        }
        let mut parts = Vec::new();
        if deferred > 0 {
            parts.push(format!("{deferred} load(s) deferred by the dependence predictor"));
        }
        if parked > 0 {
            parts.push(format!("{parked} request(s) parked awaiting dispatch"));
        }
        if !self.mshrs.is_empty() {
            parts.push(format!("{} MSHR fill(s) outstanding", self.mshrs.len()));
        }
        if !self.respond_q.is_empty() {
            parts.push(format!("{} load response(s) queued", self.respond_q.len()));
        }
        if !self.outbox.is_empty() {
            parts.push(format!("outbox {}", self.outbox.len()));
        }
        Some(parts.join(", "))
    }

    /// DT-side protocol invariants: LSQ-ID sanity, occupancy
    /// accounting, and the cross-tile generation bound (see
    /// [`crate::invariants`]).
    pub(crate) fn audit(&self, gt_gens: &[Gen], gt_free: &[bool]) -> Result<(), String> {
        let mut seen: FrameMask = 0;
        for &f in &self.order {
            let bit = (1 as FrameMask) << f.0;
            if seen & bit != 0 {
                return Err(format!("DT{}: frame {} twice in dispatch order", self.index, f.0));
            }
            seen |= bit;
            let fr = &self.frames[f.0 as usize];
            if !(fr.active && fr.in_order) {
                return Err(format!(
                    "DT{}: frame {} in dispatch order but active={} in_order={}",
                    self.index, f.0, fr.active, fr.in_order
                ));
            }
        }
        let mut live = 0usize;
        for (fi, f) in self.frames.iter().enumerate() {
            if f.active != (self.active_mask & (1 << fi) != 0) {
                return Err(format!(
                    "DT{}: frame {fi} active={} but the work-list mask says {}",
                    self.index, f.active, !f.active
                ));
            }
            let draining = f.active && f.committing && !f.commit_done;
            if draining != (self.committing_mask & (1 << fi) != 0) {
                return Err(format!(
                    "DT{}: frame {fi} draining={draining} but the committing mask disagrees",
                    self.index
                ));
            }
            let parked = f.active && !f.deferred.is_empty();
            if parked != (self.deferred_mask & (1 << fi) != 0) {
                return Err(format!(
                    "DT{}: frame {fi} parked={parked} but the deferred mask disagrees",
                    self.index
                ));
            }
            if !f.active {
                continue;
            }
            live += f.own_stores.len() + f.performed_loads.len();
            if f.gen > gt_gens[fi] {
                return Err(format!(
                    "DT{}: frame {fi} active at gen {} but the GT is at gen {}",
                    self.index, f.gen, gt_gens[fi]
                ));
            }
            if f.gen == gt_gens[fi] && gt_free[fi] {
                return Err(format!(
                    "DT{}: frame {fi} active at the GT's current gen {} but the GT slot is free",
                    self.index, f.gen
                ));
            }
            for s in &f.own_stores {
                if s.lsid >= 32 {
                    return Err(format!(
                        "DT{}: frame {fi} store LSQ id {} out of range",
                        self.index, s.lsid
                    ));
                }
                if f.mask_known && f.store_mask & (1 << s.lsid) == 0 {
                    return Err(format!(
                        "DT{}: frame {fi} holds store lsid {} absent from its store mask {:#x}",
                        self.index, s.lsid, f.store_mask
                    ));
                }
            }
            for l in &f.performed_loads {
                if l.lsid >= 32 {
                    return Err(format!(
                        "DT{}: frame {fi} load LSQ id {} out of range",
                        self.index, l.lsid
                    ));
                }
            }
            if f.mask_known && f.arrived & !f.store_mask != 0 {
                return Err(format!(
                    "DT{}: frame {fi} arrival bits {:#x} outside the store mask {:#x}",
                    self.index, f.arrived, f.store_mask
                ));
            }
        }
        if live != self.occupancy {
            return Err(format!(
                "DT{}: LSQ occupancy counter {} disagrees with live records {}",
                self.index, self.occupancy, live
            ));
        }
        Ok(())
    }

    fn tile_id(&self) -> TileId {
        TileId::Dt(self.index)
    }

    fn ensure_frame(&mut self, frame: FrameId, gen: Gen, from_dispatch: bool) -> bool {
        let f = &mut self.frames[frame.0 as usize];
        if f.gen > gen {
            return false;
        }
        if !(f.active && f.gen == gen) {
            let southmost = self.index as usize == self.geom.num_dts() - 1;
            f.reset(true, gen, southmost);
            self.active_mask |= 1 << frame.0;
            self.committing_mask &= !(1 << frame.0);
            self.deferred_mask &= !(1 << frame.0);
        }
        if from_dispatch {
            let f = &mut self.frames[frame.0 as usize];
            if !f.in_order {
                f.in_order = true;
                self.order.push(frame);
            }
        }
        true
    }

    fn frame_ok(&self, frame: FrameId, gen: Gen) -> bool {
        let f = &self.frames[frame.0 as usize];
        f.active && f.gen == gen
    }

    fn set_index(&self, ea: u64, cfg: &CoreConfig) -> (usize, u64) {
        let line = ea >> 6;
        let nd = self.geom.num_dts() as u64;
        debug_assert_eq!((line % nd) as u8, self.index, "address routed to wrong DT");
        let set = ((line / nd) as usize) % cfg.l1d_sets;
        let tag = line / nd;
        (set, tag)
    }

    fn is_hit(&self, ea: u64, cfg: &CoreConfig) -> bool {
        let (set, tag) = self.set_index(ea, cfg);
        self.tags[set].contains(&Some(tag))
    }

    fn install(&mut self, ea: u64, cfg: &CoreConfig) {
        let (set, tag) = self.set_index(ea, cfg);
        if self.tags[set].contains(&Some(tag)) {
            return;
        }
        let way = self.lru[set] as usize % cfg.l1d_ways;
        self.tags[set][way] = Some(tag);
        self.lru[set] = (self.lru[set] + 1) % cfg.l1d_ways as u8;
    }

    /// Drops the cached copy of `ea`'s line, if held (coherent chips:
    /// directory invalidations and value-plane store propagation).
    fn drop_line(&mut self, ea: u64, cfg: &CoreConfig) {
        let (set, tag) = self.set_index(ea, cfg);
        if let Some(w) = self.tags[set].iter().position(|&t| t == Some(tag)) {
            self.tags[set][w] = None;
        }
    }

    /// Every line this DT's cache currently holds (global line
    /// indices), for the chip's directory-inclusion invariant. The
    /// stored tag is `line / num_dts` and this DT only caches lines
    /// with `line % num_dts == index`, so the line reconstructs
    /// exactly.
    pub(crate) fn cached_lines(&self) -> Vec<u64> {
        let nd = self.geom.num_dts() as u64;
        let mut lines = Vec::new();
        for ways in &self.tags {
            for tag in ways.iter().flatten() {
                lines.push(tag * nd + u64::from(self.index));
            }
        }
        lines
    }

    /// A remote core's committed store landed in this core's memory
    /// replica (coherent chips, value plane). Drops any cached copy of
    /// the touched line(s) this DT homes, poisons overlapping in-flight
    /// fills, and — the speculation repair — squashes from the oldest
    /// non-committing block that already performed an overlapping
    /// load, exactly like a memory-ordering violation (§3.5): that
    /// load observed the old value, so the block and everything
    /// younger re-execute against the updated replica. Blocks already
    /// committing are exempt — their loads are architecturally
    /// committed, and the store propagation order makes that the
    /// sequential order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shared_invalidate(
        &mut self,
        now: u64,
        ea: u64,
        bytes: usize,
        cfg: &CoreConfig,
        nets: &mut Nets,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        let dt = self.index;
        let nd = self.geom.num_dts() as u64;
        let (s0, s1) = (ea, ea + bytes as u64);
        for line in (s0 >> 6)..=((s1 - 1) >> 6) {
            if line % nd != u64::from(self.index) {
                continue;
            }
            self.drop_line(line << 6, cfg);
            for m in self.mshrs.iter_mut().filter(|m| m.line == line) {
                m.poisoned = true;
            }
        }
        let mut victim: Option<(FrameId, Gen)> = None;
        for &yf in &self.order {
            let f = &self.frames[yf.0 as usize];
            if f.committing {
                continue;
            }
            let overlaps = f.performed_loads.iter().any(|l| {
                let (l0, l1) = (l.ea, l.ea + u64::from(l.bytes));
                l0 < s1 && s0 < l1
            });
            if overlaps {
                victim = Some((yf, f.gen));
                break;
            }
        }
        if let Some((frame, gen)) = victim {
            stats.coherence_flushes += 1;
            tracer.record(now, || TraceKind::Violation { dt, frame });
            nets.gsn_dt.send(
                now,
                dt_chain_pos(self.index as usize),
                0,
                GsnMsg::Violation { frame, gen },
            );
        }
    }

    fn deppred_index(&self, ea: u64) -> usize {
        ((ea >> 3) as usize ^ (ea >> 13) as usize) % self.deppred.len().max(1)
    }

    /// One cycle.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        mem: &mut SparseMem,
        memsys: &mut MemSys,
        tracer: &mut Tracer,
    ) {
        let tile = self.tile_id();
        // GCN commit/flush.
        while let Some(msg) = nets.gcn.recv(now, self.geom.gcn_pos(self.tile_id())) {
            match msg {
                GcnMsg::Commit { frame, gen } => {
                    if self.frame_ok(frame, gen) {
                        tracer.record(now, || TraceKind::CommitWave { tile, frame });
                        self.frames[frame.0 as usize].committing = true;
                        self.committing_mask |= 1 << frame.0;
                    }
                }
                GcnMsg::Flush { mask, gens } => {
                    tracer.record(now, || TraceKind::FlushWave { tile, mask });
                    for (fi, &new_gen) in gens.iter().enumerate().take(self.frames.len()) {
                        if mask & (1 << fi) == 0 {
                            continue;
                        }
                        let f = &mut self.frames[fi];
                        if f.gen < new_gen {
                            self.occupancy = self
                                .occupancy
                                .saturating_sub(f.own_stores.len() + f.performed_loads.len());
                            f.reset(false, new_gen, false);
                            self.active_mask &= !(1 << fi);
                            self.committing_mask &= !(1 << fi);
                            self.deferred_mask &= !(1 << fi);
                            self.order.retain(|&x| x.0 as usize != fi);
                        }
                    }
                }
            }
        }

        // Store mask dispatch from this row's IT.
        let row = self.index as usize + 1;
        while let Some(msg) = nets.gdn_rows[row].recv(now, 1) {
            if let RowMsg::DtMask { frame, gen, store_mask, ev } = msg {
                if self.ensure_frame(frame, gen, true) {
                    let f = &mut self.frames[frame.0 as usize];
                    f.mask_known = true;
                    f.store_mask = store_mask;
                    f.done_ev = crit.later(f.done_ev, ev);
                    let pending = std::mem::take(&mut f.pending);
                    for p in pending {
                        self.process_req(now, cfg, nets, crit, stats, mem, memsys, p, tracer);
                    }
                }
            }
        }

        // DSN store-arrival broadcasts from the other DTs.
        while let Some(d) = nets.dsn.recv(now, self.index as usize) {
            if self.ensure_frame(d.frame, d.gen, false) {
                let f = &mut self.frames[d.frame.0 as usize];
                f.arrived |= 1 << d.lsid;
                f.done_ev = crit.later(f.done_ev, d.ev);
            }
        }

        // Memory requests from the ETs.
        while let Some(m) = opn_recv(nets, now, self.tile_id(), tracer) {
            let (hops, queued) = (m.hops, m.queued);
            let (frame, gen, ev0) = match &m.payload {
                OpnPayload::LoadReq { frame, gen, ev, .. }
                | OpnPayload::StoreReq { frame, gen, ev, .. } => (*frame, *gen, *ev),
                _ => continue,
            };
            if !self.ensure_frame(frame, gen, false) {
                continue;
            }
            let e_hop = crit.event(now - u64::from(queued), ev0, Cat::OpnHop, u64::from(hops) + 1);
            let e_arr = crit.event(now, e_hop, Cat::OpnContention, u64::from(queued));
            let payload = retag(m.payload, e_arr);
            let f = &self.frames[frame.0 as usize];
            if f.in_order && f.mask_known {
                self.process_req(now, cfg, nets, crit, stats, mem, memsys, payload, tracer);
            } else {
                self.frames[frame.0 as usize].pending.push(payload);
            }
        }

        // South neighbour's commit acks.
        while let Some(msg) = nets.gsn_dt.recv(now, dt_chain_pos(self.index as usize)) {
            if let GsnMsg::StoresCommitted { frame, gen } = msg {
                if self.frame_ok(frame, gen) {
                    self.frames[frame.0 as usize].south_ack = true;
                }
            }
        }

        // Directory invalidations (coherent chips only). The copy is
        // dropped — tag and in-flight fills both — *before* the ack is
        // queued; the ack enters the OCN in the chip's memory phase,
        // after every core tick of this cycle, so the home directory
        // can only count an ack for a copy that is already gone.
        while let Some(line) = memsys.pop_inval(MemClient::Dt(self.index)) {
            self.drop_line(line << 6, cfg);
            for m in self.mshrs.iter_mut().filter(|m| m.line == line) {
                m.poisoned = true;
            }
            memsys.ack_inval(MemClient::Dt(self.index), line);
        }

        // Secondary-system completions (only the NUCA backend queues
        // events; the perfect backend resolves fills by timestamp).
        while let Some(ev) = memsys.pop_event(MemClient::Dt(self.index)) {
            match ev {
                MemEvent::Fill { line } => {
                    // Mark the MSHR ready; the fill scan below picks it
                    // up this same cycle.
                    if let Some(m) =
                        self.mshrs.iter_mut().find(|m| m.line == line && m.fill_at == PENDING_FILL)
                    {
                        m.fill_at = now;
                    }
                }
                MemEvent::StoreAck { frame } => {
                    let f = &mut self.frames[frame as usize];
                    f.acks_pending = f.acks_pending.saturating_sub(1);
                }
            }
        }

        // MSHR fills. Filling inline while scanning is safe: install
        // and the response queue never touch `mshrs`.
        let mut k = 0;
        while k < self.mshrs.len() {
            if self.mshrs[k].fill_at <= now {
                let m = self.mshrs.swap_remove(k);
                if !m.poisoned {
                    self.install(m.line << 6, cfg);
                }
                for ld in m.waiting {
                    self.respond_q.push((now + cfg.l1d_hit_lat, ld));
                }
            } else {
                k += 1;
            }
        }

        // Load responses.
        let mut r = 0;
        while r < self.respond_q.len() {
            if self.respond_q[r].0 <= now {
                let (_, ld) = self.respond_q.swap_remove(r);
                self.respond(now, crit, ld);
            } else {
                r += 1;
            }
        }

        // Wake deferred loads whose prior stores have all arrived.
        self.wake_deferred(now, cfg, stats, mem, memsys, tracer);

        // Completion detection and commit draining.
        self.advance_frames(now, cfg, nets, crit, stats, mem, memsys, tracer);

        stats.lsq_peak_occupancy = stats.lsq_peak_occupancy.max(self.occupancy);
        self.outbox.flush(nets, now, self.tile_id(), tracer);
    }

    #[allow(clippy::too_many_arguments)]
    fn process_req(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        mem: &SparseMem,
        memsys: &mut MemSys,
        payload: OpnPayload,
        tracer: &mut Tracer,
    ) {
        match payload {
            OpnPayload::LoadReq { frame, gen, lsid, opcode, ea, target, ev } => {
                let stalled = !cfg.deppred_disabled && self.deppred[self.deppred_index(ea)];
                if stalled && !self.prior_stores_arrived(frame, lsid) {
                    stats.deppred_stalls += 1;
                    self.frames[frame.0 as usize].deferred.push(PendingLoad {
                        lsid,
                        opcode,
                        ea,
                        target,
                        ev,
                    });
                    self.deferred_mask |= 1 << frame.0;
                    return;
                }
                self.execute_load(
                    now, cfg, stats, mem, memsys, frame, gen, lsid, opcode, ea, target, ev, tracer,
                );
            }
            OpnPayload::StoreReq { frame, gen, lsid, ea, val, bytes, nullified, ev } => {
                self.store_arrived(
                    now, nets, crit, stats, frame, gen, lsid, ea, val, bytes, nullified, ev, tracer,
                );
            }
            _ => unreachable!("only memory requests are queued"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_load(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        stats: &mut CoreStats,
        mem: &SparseMem,
        memsys: &mut MemSys,
        frame: FrameId,
        gen: Gen,
        lsid: u8,
        opcode: Opcode,
        ea: u64,
        target: Target,
        ev: EvId,
        tracer: &mut Tracer,
    ) {
        let dt = self.index;
        tracer.record(now, || TraceKind::LsqInsert { dt, frame, lsid, store: false });
        let bytes = opcode.access_bytes();
        let (raw, forwarded) = self.load_value(mem, frame, lsid, ea, bytes);
        if forwarded {
            stats.lsq_forwards += 1;
        }
        {
            let f = &mut self.frames[frame.0 as usize];
            f.performed_loads.push(LoadRec { lsid, ea, bytes });
        }
        self.occupancy += 1;
        let ld = ExecLoad { frame, gen, opcode, ea, raw, target, ev };
        if self.is_hit(ea, cfg) || forwarded {
            stats.l1d_hits += 1;
            self.respond_q.push((now + cfg.l1d_hit_lat, ld));
        } else {
            stats.l1d_misses += 1;
            let line = ea >> 6;
            if let Some(m) = self.mshrs.iter_mut().find(|m| m.line == line) {
                m.waiting.push(ld);
            } else if self.mshrs.len() < cfg.mshr_lines {
                let fill_at = match memsys.dside_fill(now, self.index, line) {
                    FillPath::At(t) => t,
                    FillPath::Queued => PENDING_FILL,
                };
                self.mshrs.push(Mshr { line, fill_at, waiting: vec![ld], poisoned: false });
            } else {
                // MSHR full: model a structural stall by serializing
                // behind the earliest fill.
                let earliest =
                    self.mshrs.iter_mut().min_by_key(|m| m.fill_at).expect("mshr_lines > 0");
                earliest.waiting.push(ld);
            }
        }
    }

    /// The loaded value: memory overlaid with arrived older stores, in
    /// age order (LSQ store-to-load forwarding, byte-accurate).
    fn load_value(
        &self,
        mem: &SparseMem,
        frame: FrameId,
        lsid: u8,
        ea: u64,
        bytes: u32,
    ) -> (u64, bool) {
        let mut buf = [0u8; 8];
        mem.read_bytes(ea, &mut buf[..bytes as usize]);
        let mut forwarded = false;
        let my_pos =
            self.order.iter().position(|&x| x == frame).expect("load frame must be in order");
        for pi in 0..=my_pos {
            let of = self.order[pi];
            let fr = &self.frames[of.0 as usize];
            let mut stores: Vec<&StoreRec> = fr.own_stores.iter().collect();
            stores.sort_by_key(|s| s.lsid);
            for s in stores {
                if s.nullified {
                    continue;
                }
                if of == frame && s.lsid >= lsid {
                    continue;
                }
                // Byte overlay.
                let (s0, s1) = (s.ea, s.ea + u64::from(s.bytes));
                for b in 0..u64::from(bytes) {
                    let a = ea + b;
                    if a >= s0 && a < s1 {
                        buf[b as usize] = (s.val >> (8 * (a - s0))) as u8;
                        forwarded = true;
                    }
                }
            }
        }
        (u64::from_le_bytes(buf), forwarded)
    }

    fn prior_stores_arrived(&self, frame: FrameId, lsid: u8) -> bool {
        let Some(my_pos) = self.order.iter().position(|&x| x == frame) else {
            return false;
        };
        for pi in 0..=my_pos {
            let f = &self.frames[self.order[pi].0 as usize];
            if pi < my_pos {
                if !f.mask_known || f.arrived & f.store_mask != f.store_mask {
                    return false;
                }
            } else {
                let prior: u32 = (1u32 << lsid) - 1;
                let need = f.store_mask & prior;
                if f.arrived & need != need {
                    return false;
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn store_arrived(
        &mut self,
        now: u64,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        frame: FrameId,
        gen: Gen,
        lsid: u8,
        ea: u64,
        val: u64,
        bytes: u32,
        nullified: bool,
        ev: EvId,
        tracer: &mut Tracer,
    ) {
        let dt = self.index;
        tracer.record(now, || TraceKind::LsqInsert { dt, frame, lsid, store: true });
        {
            let f = &mut self.frames[frame.0 as usize];
            f.arrived |= 1 << lsid;
            f.own_stores.push(StoreRec { lsid, ea, val, bytes, nullified, ev });
            f.done_ev = crit.later(f.done_ev, ev);
        }
        self.occupancy += 1;

        // Broadcast arrival on the DSN so every DT can count (§4.4).
        for other in 0..self.geom.num_dts() {
            if other != self.index as usize {
                nets.dsn.send(now, self.index as usize, other, DsnMsg { frame, gen, lsid, ev });
            }
        }

        // Memory-ordering violation: a younger load already performed
        // against this address without seeing this store (§3.5). The
        // GT is notified over the GSN and flushes from the load's
        // block; the dependence predictor trains on the load address
        // hash (here equal to the conflicting store address range).
        if !nullified {
            if let Some((victim, victim_gen, load_ea)) = self.find_violation(frame, lsid, ea, bytes)
            {
                let di = self.deppred_index(load_ea);
                self.deppred[di] = true;
                stats.violation_flushes += 1;
                tracer.record(now, || TraceKind::Violation { dt, frame: victim });
                nets.gsn_dt.send(
                    now,
                    dt_chain_pos(self.index as usize),
                    0,
                    GsnMsg::Violation { frame: victim, gen: victim_gen },
                );
            }
        }
    }

    /// Finds the oldest performed load that is younger than the
    /// arriving store and overlaps its bytes.
    fn find_violation(
        &self,
        frame: FrameId,
        lsid: u8,
        ea: u64,
        bytes: u32,
    ) -> Option<(FrameId, Gen, u64)> {
        let my_pos = self.order.iter().position(|&x| x == frame)?;
        let (s0, s1) = (ea, ea + u64::from(bytes));
        for (pi, &yf) in self.order.iter().enumerate() {
            if pi < my_pos {
                continue;
            }
            let f = &self.frames[yf.0 as usize];
            let mut best: Option<&LoadRec> = None;
            for l in &f.performed_loads {
                if yf == frame && l.lsid <= lsid {
                    continue;
                }
                let (l0, l1) = (l.ea, l.ea + u64::from(l.bytes));
                if l0 < s1 && s0 < l1 && best.is_none_or(|b| l.lsid < b.lsid) {
                    best = Some(l);
                }
            }
            if let Some(l) = best {
                return Some((yf, f.gen, l.ea));
            }
        }
        None
    }

    fn wake_deferred(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        stats: &mut CoreStats,
        mem: &SparseMem,
        memsys: &mut MemSys,
        tracer: &mut Tracer,
    ) {
        let dt = self.index;
        // With work lists on, visit only frames holding a deferred
        // load (`deferred_mask` is exactly the full scan's
        // `active && !deferred.is_empty()` predicate); the full scan
        // stays available for the equivalence suite.
        let all: FrameMask = crate::config::all_frames_mask(self.frames.len());
        let mut pending: FrameMask = if cfg.work_lists { self.deferred_mask } else { all };
        while pending != 0 {
            let fi = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.advance_visits += 1;
            if !self.frames[fi].active || self.frames[fi].deferred.is_empty() {
                continue;
            }
            let frame = FrameId(fi as u8);
            let gen = self.frames[fi].gen;
            let deferred = std::mem::take(&mut self.frames[fi].deferred);
            for d in deferred {
                if self.prior_stores_arrived(frame, d.lsid) {
                    let lsid = d.lsid;
                    tracer.record(now, || TraceKind::LsqWakeup { dt, frame, lsid });
                    self.execute_load(
                        now, cfg, stats, mem, memsys, frame, gen, d.lsid, d.opcode, d.ea, d.target,
                        d.ev, tracer,
                    );
                } else {
                    self.frames[fi].deferred.push(d);
                }
            }
            if self.frames[fi].deferred.is_empty() {
                self.deferred_mask &= !(1 << fi);
            }
        }
    }

    fn respond(&mut self, now: u64, crit: &mut CritPath, ld: ExecLoad) {
        if !self.frame_ok(ld.frame, ld.gen) {
            return;
        }
        let ev = crit.event(now, ld.ev, Cat::Other, now.saturating_sub(crit.time_of(ld.ev)).max(1));
        let tok = Tok::Val(extend_load(ld.opcode, ld.raw));
        match ld.target {
            Target::None => {}
            Target::Inst { idx, slot } => self.outbox.push(
                self.geom.tile_of_inst(idx),
                OpnPayload::Operand { frame: ld.frame, gen: ld.gen, idx, slot, tok, ev },
            ),
            Target::Write { slot } => self.outbox.push(
                self.geom.tile_of_header_slot(slot),
                OpnPayload::WriteVal { frame: ld.frame, gen: ld.gen, wslot: slot, tok, ev },
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_frames(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        mem: &mut SparseMem,
        memsys: &mut MemSys,
        tracer: &mut Tracer,
    ) {
        let index = self.index;
        let my_pos = dt_chain_pos(self.index as usize);
        let north = my_pos - 1;

        // Commit drain: one store per cycle to the cache/memory. The
        // port is shared across frames and must retire blocks in age
        // order — two in-flight commits can both store to the same
        // address, and a younger block's drain overtaking an older's
        // would leave the stale older value as the final memory
        // state. Commit waves arrive in age order on the GCN, so the
        // committing frames form an oldest-first prefix of the
        // dispatch order; drain the oldest unfinished one.
        'drain: for oi in 0..self.order.len() {
            let fi = self.order[oi].0 as usize;
            let f = &mut self.frames[fi];
            if !f.active || !f.committing {
                break;
            }
            if f.stores_drained {
                continue;
            }
            if f.commit_cursor == 0 {
                f.own_stores.sort_by_key(|s| s.lsid);
            }
            loop {
                let f = &mut self.frames[fi];
                let Some(s) = f.own_stores.get(f.commit_cursor).copied() else {
                    f.stores_drained = true;
                    break; // next (younger) frame may use the port
                };
                f.commit_cursor += 1;
                if f.commit_cursor >= f.own_stores.len() {
                    f.stores_drained = true;
                }
                if !s.nullified {
                    mem.write_uint(s.ea, s.val, s.bytes);
                    stats.stores += 1;
                    // A coherent chip must not adopt the line here:
                    // the GetM is still in flight, and a silent
                    // install would put a copy in the cache the home
                    // directory does not list (inclusion). The writer
                    // re-acquires the line through a GetS fill like
                    // any other reader.
                    if !memsys.is_coherent() {
                        self.install(s.ea, cfg);
                    }
                    // ESN-style store completion: under the NUCA
                    // backend the line is written back and commit
                    // completion waits for the acknowledgement.
                    if memsys.store_write(self.index, fi as u8, s.ea, s.val, s.bytes as usize) {
                        self.frames[fi].acks_pending += 1;
                    }
                    break 'drain; // the store port is spent this cycle
                }
            }
        }

        // A frame's commit work is done once its stores are drained
        // *and* every writeback is acknowledged. The perfect backend
        // never issues writebacks, so this degenerates to
        // `commit_done = stores_drained` in the same cycle — exactly
        // the pre-backend behaviour. `committing_mask` holds exactly
        // the frames the full scan could flip (`active && committing
        // && !commit_done`; a frame already done is a no-op there), so
        // the masked walk is the same transition set.
        let all: FrameMask = crate::config::all_frames_mask(self.frames.len());
        let mut drain: FrameMask = if cfg.work_lists { self.committing_mask } else { all };
        while drain != 0 {
            let fi = drain.trailing_zeros() as usize;
            drain &= drain - 1;
            self.advance_visits += 1;
            let f = &mut self.frames[fi];
            if f.active && f.committing && f.stores_drained && f.acks_pending == 0 {
                f.commit_done = true;
                self.committing_mask &= !(1 << fi);
            }
        }

        // Detection and acks only ever act on active frames; with
        // work lists on, walk the active-frame mask (same ascending
        // order the full scan visits them in).
        let mut pending: FrameMask = if cfg.work_lists { self.active_mask } else { all };
        while pending != 0 {
            let fi = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.advance_visits += 1;
            let frame = FrameId(fi as u8);
            // Store-completion detection: the nearest DT notifies the
            // GT (§4.4).
            {
                let f = &mut self.frames[fi];
                if f.active
                    && self.index == 0
                    && f.mask_known
                    && !f.done_sent
                    && f.arrived & f.store_mask == f.store_mask
                {
                    f.done_sent = true;
                    let ev = crit.event(now, f.done_ev, Cat::BlockComplete, 1);
                    let gen = f.gen;
                    tracer.record(now, || TraceKind::StoresDone { frame });
                    nets.gsn_dt.send(now, my_pos, 0, GsnMsg::StoresDone { frame, gen, ev });
                }
            }
        }

        // Ack + deallocate strictly oldest-first: a frame may leave
        // `order` only from the head (the same age-order discipline
        // as the store drain above, and as the RT's ack walk). Acking
        // by readiness alone let a *younger* frame deallocate while
        // an older one still awaited its (delayed) south ack — and
        // once the younger frame's drained stores left the LSQ, load
        // forwarding fell through to the older frame's still-queued
        // stale store, resurrecting a superseded value past memory.
        // Under clean timing acks become ready oldest-first anyway,
        // so this only delays (never drops) an ack under fault-plan
        // chain delays.
        while let Some(&frame) = self.order.first() {
            let fi = frame.0 as usize;
            let f = &mut self.frames[fi];
            if !(f.active && f.commit_done && f.south_ack && !f.ack_sent) {
                break;
            }
            f.ack_sent = true;
            tracer.record(now, || TraceKind::CommitAck { tile: TileId::Dt(index), frame });
            nets.gsn_dt.send(now, my_pos, north, GsnMsg::StoresCommitted { frame, gen: f.gen });
            self.occupancy =
                self.occupancy.saturating_sub(f.own_stores.len() + f.performed_loads.len());
            f.active = false;
            f.gen += 1;
            f.own_stores.clear();
            f.performed_loads.clear();
            self.active_mask &= !(1 << fi);
            self.deferred_mask &= !(1 << fi);
            debug_assert_eq!(self.committing_mask & (1 << fi), 0, "acked while draining");
            self.order.remove(0);
            self.blocks_since_clear += 1;
            if self.blocks_since_clear >= cfg.deppred_clear_blocks {
                self.blocks_since_clear = 0;
                self.deppred.iter_mut().for_each(|b| *b = false);
            }
        }
    }
}

fn retag(payload: OpnPayload, new_ev: EvId) -> OpnPayload {
    match payload {
        OpnPayload::LoadReq { frame, gen, lsid, opcode, ea, target, .. } => {
            OpnPayload::LoadReq { frame, gen, lsid, opcode, ea, target, ev: new_ev }
        }
        OpnPayload::StoreReq { frame, gen, lsid, ea, val, bytes, nullified, .. } => {
            OpnPayload::StoreReq { frame, gen, lsid, ea, val, bytes, nullified, ev: new_ev }
        }
        other => other,
    }
}
