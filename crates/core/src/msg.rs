//! Message types carried by the micronetworks, and the tile/topology
//! maps of the core.

use trips_isa::semantics::Tok;
use trips_isa::{BranchKind, Instruction, Opcode, OperandSlot, ReadInst, Target, WriteInst};
use trips_micronet::Coord;

use crate::config::{FrameMask, MAX_FRAMES};

/// An in-flight block slot (0..[`CoreGeometry::frames`]).
///
/// [`CoreGeometry::frames`]: crate::CoreGeometry
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u8);

/// Frame generation: bumped on every flush/reallocation so stale
/// in-flight messages can be recognized and dropped.
pub type Gen = u32;

/// Critical-path event handle.
pub type EvId = u32;

/// Identity of every tile on the operand network (the ITs are not OPN
/// clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileId {
    /// The global control tile.
    Gt,
    /// Register tile `0..4` (bank index).
    Rt(u8),
    /// Data tile `0..4` (row index).
    Dt(u8),
    /// Execution tile at (row, col), each `0..4`.
    Et(u8, u8),
}

impl TileId {
    /// The tile's OPN coordinate: the GT and RTs occupy row 0, the
    /// DTs column 0, and the ETs the 4×4 interior (Figure 2).
    pub fn opn(self) -> Coord {
        match self {
            TileId::Gt => Coord { row: 0, col: 0 },
            TileId::Rt(b) => Coord { row: 0, col: b + 1 },
            TileId::Dt(d) => Coord { row: d + 1, col: 0 },
            TileId::Et(r, c) => Coord { row: r + 1, col: c + 1 },
        }
    }

    /// The tile at an OPN coordinate — the inverse of
    /// [`TileId::opn`]. The perimeter map (row 0 = GT/RTs, column 0 =
    /// DTs, interior = ETs) is the same for every
    /// [`CoreGeometry`](crate::CoreGeometry)'s mesh, so no geometry is
    /// needed to invert it.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the largest supported
    /// (9×9) mesh.
    pub fn from_opn(c: Coord) -> TileId {
        match (c.row, c.col) {
            (0, 0) => TileId::Gt,
            (0, col) if col <= 8 => TileId::Rt(col - 1),
            (row, 0) if row <= 8 => TileId::Dt(row - 1),
            (row, col) if row <= 8 && col <= 8 => TileId::Et(row - 1, col - 1),
            _ => panic!("coordinate {c} outside the OPN"),
        }
    }

    /// The tile that hosts block-body instruction `idx` **on the
    /// prototype die**. Geometry-aware code uses
    /// [`CoreGeometry::tile_of_inst`](crate::CoreGeometry::tile_of_inst).
    pub fn of_inst(idx: u8) -> TileId {
        let s = trips_isa::InstSlot::from_index(idx);
        TileId::Et(s.et.row, s.et.col)
    }

    /// The RT that hosts header read/write slot `slot` **on the
    /// prototype die** (see
    /// [`CoreGeometry::tile_of_header_slot`](crate::CoreGeometry::tile_of_header_slot)).
    pub fn of_header_slot(slot: u8) -> TileId {
        TileId::Rt(slot / 8)
    }

    /// The DT owning byte address `ea` **on the prototype die**
    /// (§3.5; see
    /// [`CoreGeometry::tile_of_addr`](crate::CoreGeometry::tile_of_addr)).
    pub fn of_addr(ea: u64) -> TileId {
        TileId::Dt(((ea >> 6) & 3) as u8)
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileId::Gt => write!(f, "GT"),
            TileId::Rt(b) => write!(f, "RT{b}"),
            TileId::Dt(d) => write!(f, "DT{d}"),
            TileId::Et(r, c) => write!(f, "ET({r},{c})"),
        }
    }
}

/// Payloads on the operand network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpnPayload {
    /// An operand headed for a reservation-station slot of an ET.
    Operand {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Destination instruction index within the block.
        idx: u8,
        /// Destination operand slot.
        slot: OperandSlot,
        /// The token.
        tok: Tok,
        /// Producing event (critical path).
        ev: EvId,
    },
    /// A value headed for a write-queue slot of an RT.
    WriteVal {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Write-queue slot (0..32).
        wslot: u8,
        /// The token.
        tok: Tok,
        /// Producing event.
        ev: EvId,
    },
    /// A load request from an ET to the owning DT.
    LoadReq {
        /// Issuing frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// The load's LSID.
        lsid: u8,
        /// The load opcode (width/extension).
        opcode: Opcode,
        /// Effective address.
        ea: u64,
        /// Where the loaded value goes.
        target: Target,
        /// Producing event.
        ev: EvId,
    },
    /// A store (or nullified store) from an ET to a DT.
    StoreReq {
        /// Issuing frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// The store's LSID.
        lsid: u8,
        /// Effective address (meaningless when nullified).
        ea: u64,
        /// The value (meaningless when nullified).
        val: u64,
        /// Access width in bytes.
        bytes: u32,
        /// True when the store was nullified on this predicate path.
        nullified: bool,
        /// Producing event.
        ev: EvId,
    },
    /// The block's branch, headed for the GT.
    Branch {
        /// Issuing frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Branch class.
        kind: BranchKind,
        /// Exit number for predictor training.
        exit: u8,
        /// Block offset (B format).
        offset: i32,
        /// Absolute target for register branches.
        reg_target: Option<u64>,
        /// Producing event.
        ev: EvId,
    },
}

/// Fetch/dispatch command from the GT down the IT column (GDN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GdnFetch {
    /// Destination frame.
    pub frame: FrameId,
    /// Frame generation.
    pub gen: Gen,
    /// Block header address.
    pub addr: u64,
    /// Body chunk count (1..=4).
    pub chunks: u8,
    /// The header's store mask, delivered to the DTs at dispatch.
    pub store_mask: u32,
    /// Fetch-start event (critical path).
    pub ev: EvId,
}

/// Messages an IT sends east along its row (GDN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowMsg {
    /// A body instruction for an ET.
    Inst {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Block-body index.
        idx: u8,
        /// The instruction.
        inst: Instruction,
        /// Fetch event.
        ev: EvId,
    },
    /// A header read instruction for an RT.
    Read {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Read-queue slot (0..32).
        slot: u8,
        /// The read.
        read: ReadInst,
        /// Fetch event.
        ev: EvId,
    },
    /// A header write declaration for an RT.
    Write {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Write-queue slot (0..32).
        slot: u8,
        /// The write.
        write: WriteInst,
        /// Fetch event.
        ev: EvId,
    },
    /// All header read/write declarations for this frame have been
    /// dispatched (sent on the last header beat so each RT knows its
    /// declaration set is complete).
    HeaderDone {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// Fetch event.
        ev: EvId,
    },
    /// Block metadata for a DT (store mask).
    DtMask {
        /// Destination frame.
        frame: FrameId,
        /// Frame generation.
        gen: Gen,
        /// The store mask.
        store_mask: u32,
        /// Fetch event.
        ev: EvId,
    },
}

/// Global status network messages (completion/ack daisy chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsnMsg {
    /// All register writes of `frame` have arrived (RT chain).
    WritesDone {
        /// The frame.
        frame: FrameId,
        /// Generation.
        gen: Gen,
        /// Last-arrival event.
        ev: EvId,
    },
    /// All expected stores of `frame` have arrived (DT chain).
    StoresDone {
        /// The frame.
        frame: FrameId,
        /// Generation.
        gen: Gen,
        /// Last-arrival event.
        ev: EvId,
    },
    /// Register commit finished for `frame` (RT chain).
    WritesCommitted {
        /// The frame.
        frame: FrameId,
        /// Generation.
        gen: Gen,
    },
    /// Store commit finished for `frame` (DT chain).
    StoresCommitted {
        /// The frame.
        frame: FrameId,
        /// Generation.
        gen: Gen,
    },
    /// A memory-ordering violation was detected: flush from `frame`.
    Violation {
        /// The frame of the mis-speculated load.
        frame: FrameId,
        /// Generation.
        gen: Gen,
    },
    /// An IT finished refilling its chunk (IT chain, northward).
    RefillDone {
        /// Block address being refilled.
        addr: u64,
    },
}

/// Global control network messages (commit/flush wave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcnMsg {
    /// Commit `frame`: write queues and store queues drain to
    /// architectural state; speculative state for the frame clears.
    Commit {
        /// The frame.
        frame: FrameId,
        /// Generation.
        gen: Gen,
    },
    /// Flush the frames in `mask`; each flushed frame's generation is
    /// bumped to the paired value.
    Flush {
        /// Bit `i` set = flush frame `i`.
        mask: FrameMask,
        /// New generation for each flushed frame (indices past the
        /// geometry's frame count are unused).
        gens: [Gen; MAX_FRAMES],
    },
}

/// Global refill network: the GT broadcasts the refill address to the
/// ITs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrnRefill {
    /// Block header address.
    pub addr: u64,
    /// Body chunk count (so each IT knows whether it participates).
    pub chunks: u8,
}

/// Data status network: store-arrival broadcasts between DTs (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsnMsg {
    /// The frame.
    pub frame: FrameId,
    /// Generation.
    pub gen: Gen,
    /// The arrived store's LSID.
    pub lsid: u8,
    /// Arrival event at the owning DT.
    pub ev: EvId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opn_map_matches_figure_2() {
        assert_eq!(TileId::Gt.opn(), Coord { row: 0, col: 0 });
        assert_eq!(TileId::Rt(3).opn(), Coord { row: 0, col: 4 });
        assert_eq!(TileId::Dt(0).opn(), Coord { row: 1, col: 0 });
        assert_eq!(TileId::Et(0, 0).opn(), Coord { row: 1, col: 1 });
        assert_eq!(TileId::Et(3, 3).opn(), Coord { row: 4, col: 4 });
    }

    #[test]
    fn from_opn_inverts_the_coordinate_map() {
        for tile in std::iter::once(TileId::Gt)
            .chain((0..4).map(TileId::Rt))
            .chain((0..4).map(TileId::Dt))
            .chain((0..4).flat_map(|r| (0..4).map(move |c| TileId::Et(r, c))))
        {
            assert_eq!(TileId::from_opn(tile.opn()), tile);
        }
    }

    #[test]
    fn inst_to_tile_follows_chunk_striping() {
        assert_eq!(TileId::of_inst(0), TileId::Et(0, 0));
        assert_eq!(TileId::of_inst(33), TileId::Et(1, 1));
        assert_eq!(TileId::of_inst(127), TileId::Et(3, 3));
    }

    #[test]
    fn addresses_interleave_across_dts_by_line() {
        assert_eq!(TileId::of_addr(0x00), TileId::Dt(0));
        assert_eq!(TileId::of_addr(0x3f), TileId::Dt(0));
        assert_eq!(TileId::of_addr(0x40), TileId::Dt(1));
        assert_eq!(TileId::of_addr(0x80), TileId::Dt(2));
        assert_eq!(TileId::of_addr(0xc0), TileId::Dt(3));
        assert_eq!(TileId::of_addr(0x100), TileId::Dt(0));
    }

    #[test]
    fn header_slots_stripe_across_rts() {
        assert_eq!(TileId::of_header_slot(0), TileId::Rt(0));
        assert_eq!(TileId::of_header_slot(7), TileId::Rt(0));
        assert_eq!(TileId::of_header_slot(8), TileId::Rt(1));
        assert_eq!(TileId::of_header_slot(31), TileId::Rt(3));
    }
}
