//! Instruction tiles (§3.2).
//!
//! Each IT holds one bank of the L1 I-cache and acts as a slave to the
//! GT: on a dispatch command it streams its 128-byte chunk to its row
//! over eight cycles, four instructions per cycle (§4.1). IT0 holds
//! header chunks and feeds the register tiles; IT1..IT4 hold body
//! chunks and feed the ET rows (delivering the store mask to their
//! row's DT on the first beat).
//!
//! Tag state lives at the GT (which holds "the single tag array"); the
//! ITs model bank-port occupancy, dispatch pipelining, and the refill
//! protocol's south-to-north completion chain.

use std::collections::VecDeque;

use trips_isa::mem::SparseMem;
use trips_isa::{decode_body_chunk, decode_header, BlockHeader, Instruction, CHUNK_BYTES};

use crate::config::CoreConfig;
use crate::memsys::{FillPath, MemClient, MemEvent, MemSys};
use crate::msg::{GdnFetch, GsnMsg, RowMsg};
use crate::nets::{it_col_pos, row_pos_of_col, Nets};
use crate::trace::{TraceKind, Tracer};

const BEATS: u8 = 8;

/// A dispatch job's chunk, fetched and decoded once at its first beat
/// and reused for the remaining seven — re-reading and re-decoding the
/// same 128 bytes every beat was the single hottest path in the whole
/// simulator. The bank's read-port occupancy (one beat per cycle) is
/// modelled by the beat counter, not by when the host happens to read
/// the bytes.
#[derive(Debug)]
enum Decoded {
    /// IT0: the block header, or `None` when the bytes don't decode
    /// (every beat is then a no-op, as the per-beat decode would be).
    Header(Option<Box<BlockHeader>>),
    /// IT1..4: this tile's body-chunk instructions, or `None` when the
    /// chunk lies past the block's end or doesn't decode (beats then
    /// still deliver the beat-0 store mask, nothing else).
    Body(Option<Vec<Instruction>>),
}

#[derive(Debug)]
struct DispatchJob {
    cmd: GdnFetch,
    beat: u8,
    decoded: Option<Decoded>,
}

#[derive(Debug)]
struct Refill {
    addr: u64,
    /// Cycle the bank's chunk arrives (perfect backend; `u64::MAX`
    /// when the NUCA backend resolves it by fill events instead).
    done_at: u64,
    own_done: bool,
    south_done: bool,
    signalled: bool,
    /// NUCA line fills still outstanding for this tile's chunk (two
    /// 64-byte lines per 128-byte chunk; 0 on the perfect backend).
    lines_pending: u8,
}

/// One instruction tile.
pub struct InstTile {
    /// Tile index 0..5; index 0 serves the header row.
    pub index: usize,
    jobs: VecDeque<DispatchJob>,
    refill: Option<Refill>,
    /// Completion hops that arrived before this tile's own GRN refill
    /// command. The GRN and GSN are separate networks, so the south
    /// neighbour's `RefillDone` can legally outrun a (delayed) refill
    /// command; the hop must be latched, not dropped — the neighbour
    /// never resends, so a drop would wedge the completion chain.
    /// Empty whenever command delivery precedes completion (always, on
    /// the unfaulted machine).
    pending_south: VecDeque<u64>,
    /// Dispatch beats issued (for utilization stats).
    pub beats_issued: u64,
}

impl InstTile {
    /// A fresh IT.
    pub fn new(index: usize) -> InstTile {
        InstTile {
            index,
            jobs: VecDeque::new(),
            refill: None,
            pending_south: VecDeque::new(),
            beats_issued: 0,
        }
    }

    /// True if the tile has no queued work (drain check).
    pub fn idle(&self) -> bool {
        self.jobs.is_empty() && self.refill.is_none()
    }

    /// Clock-gating predicate: a tick can only change state while the
    /// tile holds a dispatch job or refill, or a message is bound for
    /// its GDN/GRN/GSN column positions. When this is false the tick
    /// body is a provable no-op and the scheduler skips it.
    pub fn active(&self, nets: &Nets) -> bool {
        if !self.idle() {
            return true;
        }
        let pos = it_col_pos(self.index);
        nets.gdn_col.has_pending_at(pos)
            || nets.grn.has_pending_at(pos)
            || nets.gsn_it.has_pending_at(pos)
    }

    /// The earliest cycle a tick can make progress without new input,
    /// for the epoch-skipping scheduler: now while dispatch beats are
    /// queued or a completed refill awaits its completion signal, the
    /// bank timer for a perfect-backend refill in flight, `None` when
    /// the refill waits on NUCA fills or the south neighbour (both
    /// folded by the activity scan as message events).
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if !self.jobs.is_empty() {
            return Some(now);
        }
        let r = self.refill.as_ref()?;
        if r.own_done && r.south_done && !r.signalled {
            return Some(now);
        }
        if !r.own_done && r.done_at != u64::MAX {
            return Some(r.done_at.max(now));
        }
        None
    }

    /// Queued work for the hang diagnoser (`None` when idle).
    pub fn diag(&self) -> Option<String> {
        if self.idle() {
            return None;
        }
        let mut parts = Vec::new();
        if !self.jobs.is_empty() {
            parts.push(format!("{} dispatch job(s) queued", self.jobs.len()));
        }
        if let Some(r) = &self.refill {
            parts.push(format!("refill of {:#x} in progress", r.addr));
        }
        Some(parts.join(", "))
    }

    /// One cycle.
    pub fn tick(
        &mut self,
        now: u64,
        _cfg: &CoreConfig,
        nets: &mut Nets,
        mem: &SparseMem,
        memsys: &mut MemSys,
        tracer: &mut Tracer,
    ) {
        let pos = it_col_pos(self.index);

        // Forwarded fetch commands arrive down the column.
        while let Some(cmd) = nets.gdn_col.recv(now, pos) {
            self.jobs.push_back(DispatchJob { cmd, beat: 0, decoded: None });
        }

        // Refill commands.
        while let Some(r) = nets.grn.recv(now, pos) {
            let participates = self.index == 0 || self.index <= r.chunks as usize;
            if participates {
                tracer
                    .record(now, || TraceKind::RefillStart { it: self.index as u8, addr: r.addr });
            }
            let early = self.pending_south.iter().position(|&a| a == r.addr);
            if let Some(k) = early {
                self.pending_south.remove(k);
            }
            // A participating tile fetches its 128-byte chunk: the
            // perfect backend delivers it whole after the flat
            // latency; the NUCA backend carries its two 64-byte lines
            // as separate fill requests.
            let (done_at, lines_pending) = if !participates {
                (now, 0)
            } else {
                let base = r.addr + CHUNK_BYTES as u64 * self.index as u64;
                match memsys.iside_fill(now, self.index as u8, base) {
                    FillPath::At(t) => (t, 0),
                    FillPath::Queued => {
                        memsys.iside_fill(now, self.index as u8, base + 64);
                        (u64::MAX, 2)
                    }
                }
            };
            self.refill = Some(Refill {
                addr: r.addr,
                done_at,
                own_done: !participates,
                south_done: self.index == 4 || early.is_some(),
                signalled: false,
                lines_pending,
            });
        }

        // NUCA fill completions. Fills for a superseded refill no
        // longer match the live chunk range and are discarded — the
        // replacing command re-requested its own lines.
        while let Some(ev) = memsys.pop_event(MemClient::It(self.index as u8)) {
            let MemEvent::Fill { line } = ev else {
                continue;
            };
            if let Some(r) = &mut self.refill {
                let base = (r.addr + CHUNK_BYTES as u64 * self.index as u64) >> 6;
                if r.lines_pending > 0 && (line == base || line == base + 1) {
                    r.lines_pending -= 1;
                    if r.lines_pending == 0 {
                        r.own_done = true;
                    }
                }
            }
        }

        // South neighbour's refill completion (chain positions put IT4
        // furthest from the GT; completion daisies northward, §4.1).
        while let Some(msg) = nets.gsn_it.recv(now, pos) {
            if let GsnMsg::RefillDone { addr } = msg {
                match &mut self.refill {
                    Some(r) if r.addr == addr => r.south_done = true,
                    _ => {
                        // Outran this tile's own refill command (or the
                        // command was superseded); latch for the
                        // command's arrival. Bounded: the GT keeps one
                        // refill in flight, so stale entries only
                        // accumulate across abandoned refills.
                        if self.pending_south.len() >= 8 {
                            self.pending_south.pop_front();
                        }
                        self.pending_south.push_back(addr);
                    }
                }
            }
        }

        // Advance the refill.
        if let Some(r) = &mut self.refill {
            if !r.own_done && now >= r.done_at {
                r.own_done = true;
            }
            if r.own_done && r.south_done && !r.signalled {
                r.signalled = true;
                let north = if self.index == 0 { 0 } else { pos - 1 };
                let addr = r.addr;
                tracer.record(now, || TraceKind::RefillDone { it: self.index as u8, addr });
                nets.gsn_it.send(now, pos, north, GsnMsg::RefillDone { addr });
            }
            if r.signalled {
                self.refill = None;
            }
        }

        // One dispatch beat per cycle from the I-cache bank's single
        // read port.
        if let Some(job) = self.jobs.front_mut() {
            let index = self.index;
            let cmd = job.cmd;
            let beat = job.beat;
            job.beat += 1;
            let finished = job.beat >= BEATS;
            self.beats_issued += 1;
            tracer.record(now, || TraceKind::DispatchBeat {
                it: index as u8,
                frame: cmd.frame,
                beat,
            });
            let decoded = job.decoded.get_or_insert_with(|| Self::decode_job(index, mem, &cmd));
            Self::issue_beat(index, now, nets, decoded, &cmd, beat);
            if finished {
                self.jobs.pop_front();
            }
        }
    }

    /// Fetches and decodes this tile's chunk for `cmd` (once per job).
    fn decode_job(index: usize, mem: &SparseMem, cmd: &GdnFetch) -> Decoded {
        let mut bytes = [0u8; CHUNK_BYTES];
        if index == 0 {
            mem.read_bytes(cmd.addr, &mut bytes);
            Decoded::Header(decode_header(&bytes).ok().map(|(h, _)| Box::new(h)))
        } else {
            let chunk = index - 1;
            if chunk >= cmd.chunks as usize {
                return Decoded::Body(None);
            }
            let base = cmd.addr + CHUNK_BYTES as u64 * (1 + chunk as u64);
            mem.read_bytes(base, &mut bytes);
            Decoded::Body(decode_body_chunk(&bytes).ok())
        }
    }

    fn issue_beat(
        index: usize,
        now: u64,
        nets: &mut Nets,
        decoded: &Decoded,
        cmd: &GdnFetch,
        beat: u8,
    ) {
        let row = &mut nets.gdn_rows[index];
        if let Decoded::Header(header) = decoded {
            // Header chunk: reads and writes to the RTs, four header
            // slots per beat.
            let Some(header) = header else {
                return;
            };
            for s in (beat * 4)..(beat * 4 + 4) {
                let rt_col = (s / 8) as usize;
                if let Some(read) = header.reads[s as usize] {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt_col),
                        RowMsg::Read { frame: cmd.frame, gen: cmd.gen, slot: s, read, ev: cmd.ev },
                    );
                }
                if let Some(write) = header.writes[s as usize] {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt_col),
                        RowMsg::Write {
                            frame: cmd.frame,
                            gen: cmd.gen,
                            slot: s,
                            write,
                            ev: cmd.ev,
                        },
                    );
                }
            }
            if beat == BEATS - 1 {
                // Declarations complete: tell every RT.
                for rt in 0..4usize {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt),
                        RowMsg::HeaderDone { frame: cmd.frame, gen: cmd.gen, ev: cmd.ev },
                    );
                }
            }
        } else if let Decoded::Body(insts) = decoded {
            // Body chunk: four instructions per beat to the row's ETs,
            // plus the store mask to the row's DT on beat zero.
            if beat == 0 {
                row.send(
                    now,
                    0,
                    1,
                    RowMsg::DtMask {
                        frame: cmd.frame,
                        gen: cmd.gen,
                        store_mask: cmd.store_mask,
                        ev: cmd.ev,
                    },
                );
            }
            let Some(insts) = insts else {
                return;
            };
            let chunk = index - 1;
            for (s, &inst) in insts.iter().enumerate().skip(beat as usize * 4).take(4) {
                if inst.is_nop() {
                    continue;
                }
                let idx = (chunk * 32 + s) as u8;
                let col = s % 4;
                row.send(
                    now,
                    0,
                    row_pos_of_col(col),
                    RowMsg::Inst { frame: cmd.frame, gen: cmd.gen, idx, inst, ev: cmd.ev },
                );
            }
        }
    }
}
