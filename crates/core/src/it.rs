//! Instruction tiles (§3.2).
//!
//! Each IT holds one bank of the L1 I-cache and acts as a slave to the
//! GT: on a dispatch command it streams its slice of the block to its
//! row, one beat per cycle, one instruction per ET column per beat
//! (§4.1: the prototype's 128-byte chunk over eight four-wide beats).
//! IT0 holds header chunks and feeds the register tiles; the body ITs
//! hold `insts_per_row` consecutive body instructions each and feed
//! the ET rows (delivering the store mask to their row's DT on the
//! first beat).
//!
//! Tag state lives at the GT (which holds "the single tag array"); the
//! ITs model bank-port occupancy, dispatch pipelining, and the refill
//! protocol's south-to-north completion chain.

use std::collections::VecDeque;

use trips_isa::mem::SparseMem;
use trips_isa::{decode_body_chunk, decode_header, BlockHeader, Instruction, CHUNK_BYTES};

use crate::config::{CoreConfig, CoreGeometry};
use crate::memsys::{FillPath, MemClient, MemEvent, MemSys};
use crate::msg::{GdnFetch, GsnMsg, RowMsg};
use crate::nets::{it_col_pos, row_pos_of_col, Nets};
use crate::trace::{TraceKind, Tracer};

/// A dispatch job's slice, fetched and decoded once at its first beat
/// and reused for the remaining ones — re-reading and re-decoding the
/// same bytes every beat was the single hottest path in the whole
/// simulator. The bank's read-port occupancy (one beat per cycle) is
/// modelled by the beat counter, not by when the host happens to read
/// the bytes.
#[derive(Debug)]
enum Decoded {
    /// IT0: the block header, or `None` when the bytes don't decode
    /// (every beat is then a no-op, as the per-beat decode would be).
    Header(Option<Box<BlockHeader>>),
    /// Body ITs: this tile's slice of the block body, or `None` when
    /// the slice lies entirely past the block's end (beats then still
    /// deliver the beat-0 store mask, nothing else). Covering chunks
    /// that fail to decode contribute `nop`s, which dispatch skips —
    /// the same traffic the prototype's whole-chunk `None` produced.
    Body(Option<Vec<Instruction>>),
}

#[derive(Debug)]
struct DispatchJob {
    cmd: GdnFetch,
    beat: u8,
    decoded: Option<Decoded>,
}

#[derive(Debug)]
struct Refill {
    addr: u64,
    /// First byte of this tile's slice (header chunk for IT0).
    base: u64,
    /// 64-byte lines the slice spans (2 for the prototype's chunks).
    nlines: u8,
    /// Cycle the bank's slice arrives (perfect backend; `u64::MAX`
    /// when the NUCA backend resolves it by fill events instead).
    done_at: u64,
    own_done: bool,
    south_done: bool,
    signalled: bool,
    /// NUCA line fills still outstanding for this tile's slice
    /// (0 on the perfect backend).
    lines_pending: u8,
}

/// One instruction tile.
pub struct InstTile {
    /// Tile index 0..5; index 0 serves the header row.
    pub index: usize,
    jobs: VecDeque<DispatchJob>,
    refill: Option<Refill>,
    /// Completion hops that arrived before this tile's own GRN refill
    /// command. The GRN and GSN are separate networks, so the south
    /// neighbour's `RefillDone` can legally outrun a (delayed) refill
    /// command; the hop must be latched, not dropped — the neighbour
    /// never resends, so a drop would wedge the completion chain.
    /// Empty whenever command delivery precedes completion (always, on
    /// the unfaulted machine).
    pending_south: VecDeque<u64>,
    /// Dispatch beats issued (for utilization stats).
    pub beats_issued: u64,
}

impl InstTile {
    /// A fresh IT.
    pub fn new(index: usize) -> InstTile {
        InstTile {
            index,
            jobs: VecDeque::new(),
            refill: None,
            pending_south: VecDeque::new(),
            beats_issued: 0,
        }
    }

    /// True if the tile has no queued work (drain check).
    pub fn idle(&self) -> bool {
        self.jobs.is_empty() && self.refill.is_none()
    }

    /// Clock-gating predicate: a tick can only change state while the
    /// tile holds a dispatch job or refill, or a message is bound for
    /// its GDN/GRN/GSN column positions. When this is false the tick
    /// body is a provable no-op and the scheduler skips it.
    pub fn active(&self, nets: &Nets) -> bool {
        if !self.idle() {
            return true;
        }
        let pos = it_col_pos(self.index);
        nets.gdn_col.has_pending_at(pos)
            || nets.grn.has_pending_at(pos)
            || nets.gsn_it.has_pending_at(pos)
    }

    /// The earliest cycle a tick can make progress without new input,
    /// for the epoch-skipping scheduler: now while dispatch beats are
    /// queued or a completed refill awaits its completion signal, the
    /// bank timer for a perfect-backend refill in flight, `None` when
    /// the refill waits on NUCA fills or the south neighbour (both
    /// folded by the activity scan as message events).
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if !self.jobs.is_empty() {
            return Some(now);
        }
        let r = self.refill.as_ref()?;
        if r.own_done && r.south_done && !r.signalled {
            return Some(now);
        }
        if !r.own_done && r.done_at != u64::MAX {
            return Some(r.done_at.max(now));
        }
        None
    }

    /// Queued work for the hang diagnoser (`None` when idle).
    pub fn diag(&self) -> Option<String> {
        if self.idle() {
            return None;
        }
        let mut parts = Vec::new();
        if !self.jobs.is_empty() {
            parts.push(format!("{} dispatch job(s) queued", self.jobs.len()));
        }
        if let Some(r) = &self.refill {
            parts.push(format!("refill of {:#x} in progress", r.addr));
        }
        Some(parts.join(", "))
    }

    /// One cycle.
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        mem: &SparseMem,
        memsys: &mut MemSys,
        tracer: &mut Tracer,
    ) {
        let g = cfg.geometry;
        let pos = it_col_pos(self.index);

        // Forwarded fetch commands arrive down the column.
        while let Some(cmd) = nets.gdn_col.recv(now, pos) {
            self.jobs.push_back(DispatchJob { cmd, beat: 0, decoded: None });
        }

        // Refill commands.
        while let Some(r) = nets.grn.recv(now, pos) {
            let span = Self::slice_span(g, self.index, r.chunks);
            let participates = span.is_some();
            if participates {
                tracer
                    .record(now, || TraceKind::RefillStart { it: self.index as u8, addr: r.addr });
            }
            let early = self.pending_south.iter().position(|&a| a == r.addr);
            if let Some(k) = early {
                self.pending_south.remove(k);
            }
            // A participating tile fetches its slice of the block: the
            // perfect backend delivers it whole after the flat
            // latency; the NUCA backend carries each of its 64-byte
            // lines as a separate fill request.
            let (base, nlines) = match span {
                None => (r.addr, 0),
                Some((off, bytes)) => (r.addr + off, bytes.div_ceil(64) as u8),
            };
            let (done_at, lines_pending) = if !participates {
                (now, 0)
            } else {
                match memsys.iside_fill(now, self.index as u8, base) {
                    FillPath::At(t) => (t, 0),
                    FillPath::Queued => {
                        for k in 1..nlines as u64 {
                            memsys.iside_fill(now, self.index as u8, base + 64 * k);
                        }
                        (u64::MAX, nlines)
                    }
                }
            };
            self.refill = Some(Refill {
                addr: r.addr,
                base,
                nlines,
                done_at,
                own_done: !participates,
                south_done: self.index == g.num_its() - 1 || early.is_some(),
                signalled: false,
                lines_pending,
            });
        }

        // NUCA fill completions. Fills for a superseded refill no
        // longer match the live slice range and are discarded — the
        // replacing command re-requested its own lines.
        while let Some(ev) = memsys.pop_event(MemClient::It(self.index as u8)) {
            let MemEvent::Fill { line } = ev else {
                continue;
            };
            if let Some(r) = &mut self.refill {
                let base = r.base >> 6;
                if r.lines_pending > 0 && line >= base && line < base + r.nlines as u64 {
                    r.lines_pending -= 1;
                    if r.lines_pending == 0 {
                        r.own_done = true;
                    }
                }
            }
        }

        // South neighbour's refill completion (chain positions put IT4
        // furthest from the GT; completion daisies northward, §4.1).
        while let Some(msg) = nets.gsn_it.recv(now, pos) {
            if let GsnMsg::RefillDone { addr } = msg {
                match &mut self.refill {
                    Some(r) if r.addr == addr => r.south_done = true,
                    _ => {
                        // Outran this tile's own refill command (or the
                        // command was superseded); latch for the
                        // command's arrival. Bounded: the GT keeps one
                        // refill in flight, so stale entries only
                        // accumulate across abandoned refills.
                        if self.pending_south.len() >= 8 {
                            self.pending_south.pop_front();
                        }
                        self.pending_south.push_back(addr);
                    }
                }
            }
        }

        // Advance the refill.
        if let Some(r) = &mut self.refill {
            if !r.own_done && now >= r.done_at {
                r.own_done = true;
            }
            if r.own_done && r.south_done && !r.signalled {
                r.signalled = true;
                let north = if self.index == 0 { 0 } else { pos - 1 };
                let addr = r.addr;
                tracer.record(now, || TraceKind::RefillDone { it: self.index as u8, addr });
                nets.gsn_it.send(now, pos, north, GsnMsg::RefillDone { addr });
            }
            if r.signalled {
                self.refill = None;
            }
        }

        // One dispatch beat per cycle from the I-cache bank's single
        // read port.
        if let Some(job) = self.jobs.front_mut() {
            let index = self.index;
            let cmd = job.cmd;
            let beat = job.beat;
            job.beat += 1;
            let finished = job.beat >= g.beats() as u8;
            self.beats_issued += 1;
            tracer.record(now, || TraceKind::DispatchBeat {
                it: index as u8,
                frame: cmd.frame,
                beat,
            });
            let decoded = job.decoded.get_or_insert_with(|| Self::decode_job(g, index, mem, &cmd));
            Self::issue_beat(g, index, now, nets, decoded, &cmd, beat);
            if finished {
                self.jobs.pop_front();
            }
        }
    }

    /// The (byte offset, byte length) of this tile's slice of a
    /// `chunks`-chunk block, or `None` when the tile holds none of it.
    /// IT0 always holds the header chunk; body IT `i` holds body
    /// instructions `(i-1)*insts_per_row ..` capped at the block's
    /// end (4 bytes per instruction, after the 128-byte header).
    fn slice_span(g: CoreGeometry, index: usize, chunks: u8) -> Option<(u64, usize)> {
        if index == 0 {
            return Some((0, CHUNK_BYTES));
        }
        let a = (index - 1) * g.insts_per_row();
        let b = (a + g.insts_per_row()).min(chunks as usize * 32);
        if b <= a {
            return None;
        }
        Some(((CHUNK_BYTES + 4 * a) as u64, 4 * (b - a)))
    }

    /// Fetches and decodes this tile's slice for `cmd` (once per job).
    /// Body slices decode their covering 32-instruction chunks (the
    /// encoding's unit) and keep the slice's portion.
    fn decode_job(g: CoreGeometry, index: usize, mem: &SparseMem, cmd: &GdnFetch) -> Decoded {
        let mut bytes = [0u8; CHUNK_BYTES];
        if index == 0 {
            mem.read_bytes(cmd.addr, &mut bytes);
            return Decoded::Header(decode_header(&bytes).ok().map(|(h, _)| Box::new(h)));
        }
        let a = (index - 1) * g.insts_per_row();
        let b = (a + g.insts_per_row()).min(cmd.chunks as usize * 32);
        if b <= a {
            return Decoded::Body(None);
        }
        let mut insts = Vec::with_capacity(b - a);
        for chunk in (a / 32)..=((b - 1) / 32) {
            let base = cmd.addr + CHUNK_BYTES as u64 * (1 + chunk as u64);
            mem.read_bytes(base, &mut bytes);
            let decoded = decode_body_chunk(&bytes).ok();
            let lo = a.max(chunk * 32) - chunk * 32;
            let hi = b.min((chunk + 1) * 32) - chunk * 32;
            match decoded {
                Some(c) => insts.extend_from_slice(&c[lo..hi]),
                None => insts.extend(std::iter::repeat_with(Instruction::nop).take(hi - lo)),
            }
        }
        Decoded::Body(Some(insts))
    }

    fn issue_beat(
        g: CoreGeometry,
        index: usize,
        now: u64,
        nets: &mut Nets,
        decoded: &Decoded,
        cmd: &GdnFetch,
        beat: u8,
    ) {
        let row = &mut nets.gdn_rows[index];
        if let Decoded::Header(header) = decoded {
            // Header chunk: reads and writes to the RTs,
            // `header_slots_per_beat` header slots per beat.
            let Some(header) = header else {
                return;
            };
            let per_beat = g.header_slots_per_beat();
            let slots_per_rt = g.slots_per_rt() as u8;
            for s in (beat as usize * per_beat)..((beat as usize + 1) * per_beat) {
                let s = s as u8;
                let rt_col = (s / slots_per_rt) as usize;
                if let Some(read) = header.reads[s as usize] {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt_col),
                        RowMsg::Read { frame: cmd.frame, gen: cmd.gen, slot: s, read, ev: cmd.ev },
                    );
                }
                if let Some(write) = header.writes[s as usize] {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt_col),
                        RowMsg::Write {
                            frame: cmd.frame,
                            gen: cmd.gen,
                            slot: s,
                            write,
                            ev: cmd.ev,
                        },
                    );
                }
            }
            if beat as usize == g.beats() - 1 {
                // Declarations complete: tell every RT.
                for rt in 0..g.num_rts() {
                    row.send(
                        now,
                        0,
                        row_pos_of_col(rt),
                        RowMsg::HeaderDone { frame: cmd.frame, gen: cmd.gen, ev: cmd.ev },
                    );
                }
            }
        } else if let Decoded::Body(insts) = decoded {
            // Body slice: one instruction per ET column per beat, plus
            // the store mask to the row's DT on beat zero.
            if beat == 0 {
                row.send(
                    now,
                    0,
                    1,
                    RowMsg::DtMask {
                        frame: cmd.frame,
                        gen: cmd.gen,
                        store_mask: cmd.store_mask,
                        ev: cmd.ev,
                    },
                );
            }
            let Some(insts) = insts else {
                return;
            };
            let a = (index - 1) * g.insts_per_row();
            let cols = g.et_cols;
            for (s, &inst) in insts.iter().enumerate().skip(beat as usize * cols).take(cols) {
                if inst.is_nop() {
                    continue;
                }
                let idx = (a + s) as u8;
                let col = s % cols;
                row.send(
                    now,
                    0,
                    row_pos_of_col(col),
                    RowMsg::Inst { frame: cmd.frame, gen: cmd.gen, idx, inst, ev: cmd.ev },
                );
            }
        }
    }
}
