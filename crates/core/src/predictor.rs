//! The next-block predictor of the global tile (§3.1).
//!
//! TRIPS predicts at block granularity. Each block emits one *exit*
//! (0..8, the branch's 3-bit exit field), so the predictor builds
//! *exit histories* instead of taken/not-taken bits:
//!
//! * an **exit predictor** — a tournament of a local table and a
//!   gshare-style table over the exit history, as in the Alpha 21264;
//! * a **target predictor** — a branch target buffer, a call target
//!   buffer, a return address stack, and a branch *type* predictor
//!   that selects among them (the distributed fetch protocol means the
//!   predictor never sees branch instructions, so even the kind of
//!   branch must be predicted).

use trips_isa::BranchKind;

use crate::config::PredictorConfig;

/// Speculative predictor state snapshotted per in-flight block so a
/// flush can restore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorCheckpoint {
    history: u32,
    ras_top: usize,
    ras_depth: usize,
}

impl PredictorCheckpoint {
    /// The exit-history register value at the checkpoint (used to
    /// index the gshare table when training later).
    pub fn history(&self) -> u32 {
        self.history
    }
}

/// A complete next-block prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next block address.
    pub target: u64,
    /// Predicted exit number.
    pub exit: u8,
    /// Predicted branch kind.
    pub kind: BranchKind,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u32,
    target: u64,
}

/// The predictor.
#[derive(Debug)]
pub struct NextBlockPredictor {
    cfg: PredictorConfig,
    /// Local exit table: hysteresis counter + exit.
    local: Vec<(u8, u8)>,
    /// Gshare exit table.
    gshare: Vec<(u8, u8)>,
    /// Tournament chooser: 2-bit counter, ≥2 selects gshare.
    chooser: Vec<u8>,
    /// Exit history: 3 bits per block exit.
    history: u32,
    btb: Vec<Option<BtbEntry>>,
    ctb: Vec<Option<BtbEntry>>,
    ras: Vec<u64>,
    ras_top: usize,
    ras_depth: usize,
    /// Branch-kind table: 2-bit encoded kind with hysteresis.
    btype: Vec<u8>,
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Branch => 0,
        BranchKind::Call => 1,
        BranchKind::Return => 2,
        BranchKind::Sequential | BranchKind::Halt => 3,
    }
}

fn code_kind(c: u8) -> BranchKind {
    match c & 3 {
        0 => BranchKind::Branch,
        1 => BranchKind::Call,
        2 => BranchKind::Return,
        _ => BranchKind::Sequential,
    }
}

impl NextBlockPredictor {
    /// A predictor with the given table sizes.
    pub fn new(cfg: PredictorConfig) -> NextBlockPredictor {
        NextBlockPredictor {
            local: vec![(0, 0); cfg.local_entries],
            gshare: vec![(0, 0); cfg.gshare_entries],
            chooser: vec![1; cfg.chooser_entries],
            history: 0,
            btb: vec![None; cfg.btb_entries],
            ctb: vec![None; cfg.ctb_entries],
            ras: vec![0; cfg.ras_entries],
            ras_top: 0,
            ras_depth: 0,
            btype: vec![kind_code(BranchKind::Sequential) << 1; cfg.btype_entries],
            cfg,
        }
    }

    fn hist_mask(&self) -> u32 {
        let bits = (3 * self.cfg.history_exits).min(30) as u32;
        (1u32 << bits) - 1
    }

    fn block_index(addr: u64, len: usize) -> usize {
        ((addr >> 7) as usize) % len.max(1)
    }

    fn gshare_index(&self, addr: u64) -> usize {
        (((addr >> 7) as usize) ^ (self.history as usize)) % self.cfg.gshare_entries.max(1)
    }

    /// Captures speculative state before predicting a block, for
    /// restoration on a flush.
    pub fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint {
            history: self.history,
            ras_top: self.ras_top,
            ras_depth: self.ras_depth,
        }
    }

    /// Restores a checkpoint after a misprediction flush.
    pub fn restore(&mut self, cp: PredictorCheckpoint) {
        self.history = cp.history;
        self.ras_top = cp.ras_top;
        self.ras_depth = cp.ras_depth;
    }

    /// Applies a resolved block outcome to the speculative state after
    /// a [`NextBlockPredictor::restore`]: pushes the actual exit into
    /// the history and repairs the RAS for the actual branch kind
    /// (`seq_addr` is the block's fall-through address, pushed by
    /// calls).
    pub fn apply_outcome(&mut self, exit: u8, kind: BranchKind, seq_addr: u64) {
        self.history = ((self.history << 3) | u32::from(exit & 7)) & self.hist_mask();
        match kind {
            BranchKind::Call => self.ras_push(seq_addr),
            BranchKind::Return => {
                let _ = self.ras_pop();
            }
            _ => {}
        }
    }

    /// Predicts the block following the block at `addr`, whose size in
    /// bytes is `size` (needed for sequential fall-through and for the
    /// return address pushed by a predicted call).
    ///
    /// Updates speculative history/RAS state; callers must have taken
    /// a [`PredictorCheckpoint`] first if they might need to undo.
    pub fn predict(&mut self, addr: u64, size: u64) -> Prediction {
        // Exit prediction: tournament of local and gshare.
        let li = Self::block_index(addr, self.cfg.local_entries);
        let gi = self.gshare_index(addr);
        let ci = self.gshare_index(addr) % self.cfg.chooser_entries.max(1);
        let exit = if self.chooser[ci] >= 2 { self.gshare[gi].1 } else { self.local[li].1 };

        // Kind prediction.
        let ti = ((addr >> 7) as usize ^ (usize::from(exit) << 5)) % self.cfg.btype_entries.max(1);
        let kind = code_kind(self.btype[ti] >> 1);

        // Target prediction by kind.
        let seq = addr + size;
        let tag = (addr >> 7) as u32 ^ (u32::from(exit) << 27);
        let target = match kind {
            BranchKind::Sequential | BranchKind::Halt => seq,
            BranchKind::Branch => {
                let bi =
                    ((addr >> 7) as usize ^ (usize::from(exit) << 4)) % self.cfg.btb_entries.max(1);
                match self.btb[bi] {
                    Some(e) if e.tag == tag => e.target,
                    _ => seq,
                }
            }
            BranchKind::Call => {
                let ci2 = ((addr >> 7) as usize) % self.cfg.ctb_entries.max(1);
                let t = match self.ctb[ci2] {
                    Some(e) if e.tag == tag => e.target,
                    _ => seq,
                };
                self.ras_push(seq);
                t
            }
            BranchKind::Return => self.ras_pop().unwrap_or(seq),
        };

        // Speculative history update.
        self.history = ((self.history << 3) | u32::from(exit & 7)) & self.hist_mask();

        Prediction { target, exit, kind }
    }

    fn ras_push(&mut self, v: u64) {
        if self.cfg.ras_entries == 0 {
            return;
        }
        self.ras_top = (self.ras_top + 1) % self.cfg.ras_entries;
        self.ras[self.ras_top] = v;
        self.ras_depth = (self.ras_depth + 1).min(self.cfg.ras_entries);
    }

    fn ras_pop(&mut self) -> Option<u64> {
        if self.ras_depth == 0 || self.cfg.ras_entries == 0 {
            return None;
        }
        let v = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.cfg.ras_entries - 1) % self.cfg.ras_entries;
        self.ras_depth -= 1;
        Some(v)
    }

    /// Trains the tables with a resolved block: the block at `addr`
    /// (size `size`) actually exited via `exit` with `kind` to
    /// `target`. `history_at_predict` is the history value the
    /// prediction used (from its checkpoint).
    pub fn update(
        &mut self,
        addr: u64,
        exit: u8,
        kind: BranchKind,
        target: u64,
        history_at_predict: u32,
    ) {
        let li = Self::block_index(addr, self.cfg.local_entries);
        let gi = (((addr >> 7) as usize) ^ (history_at_predict as usize))
            % self.cfg.gshare_entries.max(1);
        let ci = gi % self.cfg.chooser_entries.max(1);

        let local_right = self.local[li].1 == exit;
        let gshare_right = self.gshare[gi].1 == exit;
        if local_right != gshare_right {
            let c = &mut self.chooser[ci];
            if gshare_right {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        train_exit(&mut self.local[li], exit);
        train_exit(&mut self.gshare[gi], exit);

        let ti = ((addr >> 7) as usize ^ (usize::from(exit) << 5)) % self.cfg.btype_entries.max(1);
        train_kind(&mut self.btype[ti], kind_code(kind));

        let tag = (addr >> 7) as u32 ^ (u32::from(exit) << 27);
        match kind {
            BranchKind::Branch => {
                let bi =
                    ((addr >> 7) as usize ^ (usize::from(exit) << 4)) % self.cfg.btb_entries.max(1);
                self.btb[bi] = Some(BtbEntry { tag, target });
            }
            BranchKind::Call => {
                let ci2 = ((addr >> 7) as usize) % self.cfg.ctb_entries.max(1);
                self.ctb[ci2] = Some(BtbEntry { tag, target });
            }
            _ => {}
        }
    }
}

fn train_exit(e: &mut (u8, u8), exit: u8) {
    if e.1 == exit {
        e.0 = (e.0 + 1).min(3);
    } else if e.0 > 0 {
        e.0 -= 1;
    } else {
        *e = (1, exit);
    }
}

fn train_kind(e: &mut u8, code: u8) {
    let (conf, cur) = (*e & 1, *e >> 1);
    if cur == code {
        *e = (code << 1) | 1;
    } else if conf == 1 {
        *e = cur << 1; // lose hysteresis
    } else {
        *e = code << 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> NextBlockPredictor {
        NextBlockPredictor::new(PredictorConfig::prototype())
    }

    #[test]
    fn learns_a_steady_branch() {
        let mut p = predictor();
        let addr = 0x1_0000;
        let target = 0x2_0000;
        for _ in 0..8 {
            let cp = p.checkpoint();
            let _ = p.predict(addr, 256);
            p.update(addr, 2, BranchKind::Branch, target, cp.history);
        }
        let pr = p.predict(addr, 256);
        assert_eq!(pr.exit, 2);
        assert_eq!(pr.kind, BranchKind::Branch);
        assert_eq!(pr.target, target);
    }

    #[test]
    fn ras_predicts_returns() {
        let mut p = predictor();
        let call_addr = 0x1_0000;
        let callee = 0x5_0000;
        // Teach: the call block calls, the callee block returns.
        for _ in 0..8 {
            let cp = p.checkpoint();
            let _ = p.predict(call_addr, 384);
            p.update(call_addr, 0, BranchKind::Call, callee, cp.history);
            let cp2 = p.checkpoint();
            let _ = p.predict(callee, 256);
            p.update(callee, 0, BranchKind::Return, call_addr + 384, cp2.history);
        }
        let pr = p.predict(call_addr, 384);
        assert_eq!(pr.kind, BranchKind::Call);
        assert_eq!(pr.target, callee);
        let pr2 = p.predict(callee, 256);
        assert_eq!(pr2.kind, BranchKind::Return);
        assert_eq!(pr2.target, call_addr + 384, "return address from the RAS");
    }

    #[test]
    fn checkpoint_restores_history_and_ras() {
        let mut p = predictor();
        let cp = p.checkpoint();
        let _ = p.predict(0x1_0000, 256); // speculatively bumps history
        let _ = p.predict(0x2_0000, 256);
        p.restore(cp);
        assert_eq!(p.checkpoint(), cp);
    }

    #[test]
    fn alternating_exits_learned_by_history() {
        // Block alternates exit 1, exit 2: local cannot learn it but
        // gshare over exit history can.
        let mut p = predictor();
        let addr = 0x3_0000;
        let mut correct = 0;
        for i in 0..200u32 {
            let exit = if i % 2 == 0 { 1 } else { 2 };
            let cp = p.checkpoint();
            let pr = p.predict(addr, 256);
            if pr.exit == exit {
                correct += 1;
            } else {
                // Mirror the GT: a misprediction flush restores the
                // checkpoint and applies the actual outcome.
                p.restore(cp);
                p.apply_outcome(exit, BranchKind::Branch, addr + 256);
            }
            p.update(addr, exit, BranchKind::Branch, 0x4_0000 + u64::from(exit), cp.history);
        }
        assert!(correct > 150, "history predictor should learn alternation: {correct}/200");
    }

    #[test]
    fn sequential_fallthrough_by_default() {
        let mut p = predictor();
        let pr = p.predict(0x7_0000, 512);
        assert_eq!(pr.kind, BranchKind::Sequential);
        assert_eq!(pr.target, 0x7_0000 + 512);
    }
}
