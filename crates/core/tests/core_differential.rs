//! Differential tests: the cycle-level core must produce the same
//! final memory as the architectural block interpreter on every
//! program, at both code-quality levels.

use trips_core::{CoreConfig, Processor};
use trips_tasm::{blockinterp, compile, Opcode, ProgramBuilder, Quality};

const OUT: u64 = 0x10_0000;

fn run_both(p: trips_tasm::Program, cells: &[u64]) -> trips_core::CoreStats {
    let mut last_stats = None;
    for q in [Quality::Hand, Quality::Compiled] {
        let c = compile(&p, q).unwrap_or_else(|e| panic!("compile({q}) failed: {e}"));
        let reference = blockinterp::run_image(&c.image, 500_000)
            .unwrap_or_else(|e| panic!("blockinterp({q}) failed: {e}"));
        let mut cpu = Processor::new(CoreConfig::prototype());
        let stats =
            cpu.run(&c.image, 3_000_000).unwrap_or_else(|e| panic!("core({q}) failed: {e}"));
        for (i, &cell) in cells.iter().enumerate() {
            assert_eq!(
                cpu.memory().read_u64(cell),
                reference.mem.read_u64(cell),
                "quality {q}, cell {i} at {cell:#x}"
            );
        }
        assert_eq!(
            stats.blocks_committed, reference.blocks,
            "quality {q}: committed block count must match the interpreter"
        );
        last_stats = Some(stats);
    }
    last_stats.expect("ran at least once")
}

#[test]
fn single_block_store() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let a = f.iconst(40);
    let b = f.addi(a, 2);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, b);
    f.halt();
    f.finish();
    let stats = run_both(p.finish(), &[OUT]);
    assert!(stats.cycles > 0);
}

#[test]
fn register_forwarding_between_blocks() {
    // A chain of blocks each incrementing a register: exercises the
    // RT write-queue forwarding path.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let v = f.fresh();
    f.iconst_into(v, 1);
    let b1 = f.new_block();
    let b2 = f.new_block();
    let b3 = f.new_block();
    f.jmp(b1);
    f.switch_to(b1);
    f.bini_into(v, Opcode::Muli, v, 3);
    f.jmp(b2);
    f.switch_to(b2);
    f.bini_into(v, Opcode::Addi, v, 7);
    f.jmp(b3);
    f.switch_to(b3);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, v);
    f.halt();
    f.finish();
    run_both(p.finish(), &[OUT]);
}

#[test]
fn counted_loop_speculation() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let sum = f.fresh();
    let i = f.fresh();
    f.iconst_into(sum, 0);
    f.iconst_into(i, 0);
    let body = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    f.bin_into(sum, Opcode::Add, sum, i);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 40);
    f.br(c, body, done);
    f.switch_to(done);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, sum);
    f.halt();
    f.finish();
    let stats = run_both(p.finish(), &[OUT]);
    assert!(stats.predictions > 10, "loop should exercise the predictor");
}

#[test]
fn predicated_diamond() {
    let mut p = ProgramBuilder::new();
    p.global_words(0x20_0000, &(0..12u64).map(|i| i * 11 + 1).collect::<Vec<_>>());
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let t = f.new_block();
    let e = f.new_block();
    let j = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(base, off);
    let a = f.load(Opcode::Ld, addr, 0);
    let bit = f.bini(Opcode::Andi, a, 1);
    let odd = f.bini(Opcode::Teqi, bit, 1);
    let r = f.fresh();
    f.br(odd, t, e);
    f.switch_to(t);
    f.bini_into(r, Opcode::Muli, a, 3);
    f.jmp(j);
    f.switch_to(e);
    f.bini_into(r, Opcode::Srai, a, 1);
    f.jmp(j);
    f.switch_to(j);
    let ob = f.iconst(OUT as i64);
    let oa = f.add(ob, off);
    f.store(Opcode::Sd, oa, 0, r);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 12);
    f.br(c, body, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    run_both(p.finish(), &(0..12).map(|k| OUT + 8 * k).collect::<Vec<_>>());
}

#[test]
fn store_load_same_block() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    let a = f.iconst(111);
    f.store(Opcode::Sd, buf, 0, a);
    let b = f.load(Opcode::Ld, buf, 0);
    let c = f.addi(b, 1);
    f.store(Opcode::Sd, buf, 8, c);
    f.halt();
    f.finish();
    run_both(p.finish(), &[OUT, OUT + 8]);
}

#[test]
fn cross_block_memory_dependence() {
    // Block n stores, block n+1 loads the same address: exercises
    // speculative loads, the violation path, and the dependence
    // predictor.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let st = f.new_block();
    let ld = f.new_block();
    let done = f.new_block();
    f.jmp(st);
    f.switch_to(st);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, i);
    f.jmp(ld);
    f.switch_to(ld);
    let buf2 = f.iconst(OUT as i64);
    let v = f.load(Opcode::Ld, buf2, 0);
    let v2 = f.bini(Opcode::Slli, v, 1);
    f.store(Opcode::Sd, buf2, 8, v2);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 6);
    f.br(c, st, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    run_both(p.finish(), &[OUT, OUT + 8]);
}

#[test]
fn function_calls() {
    let mut p = ProgramBuilder::new();
    let mut main = p.func("main", 0);
    let x = main.iconst(10);
    let r = main.call(trips_tasm::FuncId(1), &[x]);
    let buf = main.iconst(OUT as i64);
    main.store(Opcode::Sd, buf, 0, r);
    main.halt();
    main.finish();
    let mut sq = p.func("square_plus1", 1);
    let a = sq.param(0);
    let m = sq.mul(a, a);
    let r = sq.addi(m, 1);
    sq.ret(Some(r));
    sq.finish();
    run_both(p.finish(), &[OUT]);
}

#[test]
fn conditional_store_nullification() {
    let mut p = ProgramBuilder::new();
    p.global_words(0x20_0000, &(0..8u64).map(|i| i * 13 % 50).collect::<Vec<_>>());
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let t = f.new_block();
    let j = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(base, off);
    let a = f.load(Opcode::Ld, addr, 0);
    let big = f.bini(Opcode::Tgti, a, 25);
    f.br(big, t, j);
    f.switch_to(t);
    let ob = f.iconst(OUT as i64);
    let oa = f.add(ob, off);
    f.store(Opcode::Sd, oa, 0, a);
    f.jmp(j);
    f.switch_to(j);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 8);
    f.br(c, body, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    run_both(p.finish(), &(0..8).map(|k| OUT + 8 * k).collect::<Vec<_>>());
}
