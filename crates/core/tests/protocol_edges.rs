//! Targeted protocol-edge tests: I-cache refills under capacity
//! pressure, the speculation-inhibit block flag, and flush storms.

use trips_core::{CoreConfig, Processor};
use trips_isa::{
    ArchReg, BlockFlags, Instruction, Opcode, ProgramImage, ReadInst, Target, TripsBlock, WriteInst,
};
use trips_tasm::{compile, Opcode as TOp, ProgramBuilder, Quality};

/// A long straight-line chain of blocks overflows the GT's I-cache
/// tags, forcing the GRN refill protocol; results stay correct.
#[test]
fn icache_refills_under_capacity_pressure() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("long", 0);
    let acc = f.fresh();
    f.iconst_into(acc, 0);
    // 200 basic blocks, each its own TRIPS block at Compiled quality.
    let blocks: Vec<_> = (0..200).map(|_| f.new_block()).collect();
    let done = f.new_block();
    f.jmp(blocks[0]);
    for (i, &b) in blocks.iter().enumerate() {
        f.switch_to(b);
        f.bini_into(acc, TOp::Addi, acc, (i + 1) as i64);
        let next = blocks.get(i + 1).copied().unwrap_or(done);
        f.jmp(next);
    }
    f.switch_to(done);
    let buf = f.iconst(0x10_0000);
    f.store(TOp::Sd, buf, 0, acc);
    f.halt();
    f.finish();
    let img = compile(&p.finish(), Quality::Compiled).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 10_000_000).expect("runs");
    let expect: u64 = (1..=200).sum();
    assert_eq!(cpu.memory().read_u64(0x10_0000), expect);
    assert!(
        stats.icache_refills >= 100,
        "200 distinct blocks must overflow the 128-block tag capacity: {} refills",
        stats.icache_refills
    );
}

/// A block flagged INHIBIT_SPECULATION does not dispatch until it is
/// the oldest in-flight block (§3.1's execution-mode control).
#[test]
fn inhibit_speculation_serializes_dispatch() {
    // Block A: writes R4 := 7, branches to B.
    let mut a = TripsBlock::new();
    a.push(Instruction::movi(7, [Target::write(0), Target::none()])).unwrap();
    a.set_write(0, WriteInst::new(ArchReg::new(4))).unwrap();
    a.push(Instruction::branch(Opcode::Bro, 0, 2)).unwrap(); // next block at +256B
    a.validate().unwrap();

    // Block B (flagged): stores R4 to 0x11_0000, halts.
    let mut b = TripsBlock::new();
    b.header.flags = BlockFlags::INHIBIT_SPECULATION;
    b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::right(2), Target::none()])).unwrap();
    b.push(Instruction::constant(Opcode::Genu, 0x11, Target::left(1))).unwrap();
    b.push(Instruction::constant(Opcode::App, 0, Target::left(2))).unwrap();
    b.push(Instruction::store(Opcode::Sd, 0, 0)).unwrap();
    b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
    b.header.store_mask = 1;
    b.validate().unwrap();

    let mut img = ProgramImage::new();
    img.entry = 0x1_0000;
    img.add_block(0x1_0000, &a);
    img.add_block(0x1_0100, &b);

    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 100_000).expect("runs");
    assert_eq!(cpu.memory().read_u64(0x11_0000), 7, "B read A's committed write");
    let tl = &stats.timeline;
    assert_eq!(tl.len(), 2, "two blocks commit");
    assert!(
        tl[1].dispatch >= tl[0].ack,
        "flagged block dispatched at {} before A deallocated at {}",
        tl[1].dispatch,
        tl[0].ack
    );
}

/// Without the flag, the same pair overlaps (the speculative default).
#[test]
fn unflagged_blocks_dispatch_speculatively() {
    let mut a = TripsBlock::new();
    a.push(Instruction::movi(7, [Target::write(0), Target::none()])).unwrap();
    a.set_write(0, WriteInst::new(ArchReg::new(4))).unwrap();
    a.push(Instruction::branch(Opcode::Bro, 0, 2)).unwrap();
    let mut b = TripsBlock::new();
    b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::right(2), Target::none()])).unwrap();
    b.push(Instruction::constant(Opcode::Genu, 0x11, Target::left(1))).unwrap();
    b.push(Instruction::constant(Opcode::App, 0, Target::left(2))).unwrap();
    b.push(Instruction::store(Opcode::Sd, 0, 0)).unwrap();
    b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
    b.header.store_mask = 1;

    let mut img = ProgramImage::new();
    img.entry = 0x1_0000;
    img.add_block(0x1_0000, &a);
    img.add_block(0x1_0100, &b);

    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 100_000).expect("runs");
    assert_eq!(cpu.memory().read_u64(0x11_0000), 7, "forwarding still delivers R4");
    let tl = &stats.timeline;
    assert!(
        tl[1].dispatch < tl[0].ack,
        "speculative dispatch should overlap the predecessor's commit"
    );
}

/// Restricting the machine to one frame (no speculation at all) still
/// computes correctly — the max_frames knob.
#[test]
fn single_frame_mode_is_correct() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let sum = f.fresh();
    let i = f.fresh();
    f.iconst_into(sum, 0);
    f.iconst_into(i, 0);
    let body = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    f.bin_into(sum, TOp::Add, sum, i);
    f.bini_into(i, TOp::Addi, i, 1);
    let c = f.bini(TOp::Tlti, i, 20);
    f.br(c, body, done);
    f.switch_to(done);
    let buf = f.iconst(0x10_0000);
    f.store(TOp::Sd, buf, 0, sum);
    f.halt();
    f.finish();
    let img = compile(&p.finish(), Quality::Compiled).expect("compiles").image;

    let mut narrow = Processor::new(CoreConfig { max_frames: 1, ..CoreConfig::prototype() });
    let n = narrow.run(&img, 10_000_000).expect("runs");
    assert_eq!(narrow.memory().read_u64(0x10_0000), 190);

    let mut wide = Processor::new(CoreConfig::prototype());
    let w = wide.run(&img, 10_000_000).expect("runs");
    assert_eq!(wide.memory().read_u64(0x10_0000), 190);
    assert!(w.cycles < n.cycles, "speculation must help: {} vs {}", w.cycles, n.cycles);
}
