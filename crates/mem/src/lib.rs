//! # trips-mem — the secondary memory system
//!
//! The TRIPS prototype's 1 MB static NUCA array: sixteen memory tiles
//! (MT), each a 64 KB 4-way bank with an OCN router and a single-entry
//! MSHR, embedded in a 4×10 wormhole-routed mesh with 16-byte links
//! and four virtual channels (§3.6). Network tiles (NT) around the
//! array hold programmable routing tables that decide where each
//! request goes, which lets software configure the array as one shared
//! L2, two per-processor L2s, scratchpad memory, or mixtures. Behind
//! the banks sit two SDRAM controllers; two DMA engines move bulk data
//! across the physical address space.
//!
//! By default the processor cores of `trips-core` run their
//! evaluation against a perfect L2, exactly as the paper's Table 3
//! does — but the core's `MemBackend::Nuca` configuration plugs this
//! crate in as the live secondary system: DT miss fills, IT I-cache
//! refills, and store writebacks then travel the OCN to the banks,
//! ticked in lockstep with the core (DESIGN.md §5d). The `memsweep`
//! harness sweeps cache modes and interleavings over that path; the
//! crate also stands alone for memory-system experiments and
//! streaming/DMA studies.
//!
//! ```
//! use trips_mem::{MemConfig, MemMode, MemReq, SecondarySystem};
//!
//! let mut l2 = SecondarySystem::new(MemConfig::prototype());
//! l2.write_backing(0x4_0000, &[7u8; 64]);
//! l2.request(0, 0, MemReq::read_line(1, 0x4_0000));
//! let mut t = 0;
//! let resp = loop {
//!     l2.tick(t);
//!     t += 1;
//!     if let Some(r) = l2.pop_response(t, 0) {
//!         break r;
//!     }
//!     assert!(t < 10_000);
//! };
//! assert_eq!(resp.id, 1);
//! assert_eq!(resp.data[0], 7);
//! assert_eq!(l2.config().mode, MemMode::L2Shared);
//! ```

mod dma;
mod geometry;
mod system;
mod tiles;

pub use dma::{DmaEngine, DmaJob};
pub use geometry::{OcnGeometry, BLOCK_ROWS, BLOCK_SIDE_PORTS, CORES_PER_BLOCK, MAX_CORES};
pub use system::{
    CohSnapshot, DirView, MemConfig, MemMode, MemReq, MemResp, ReqKind, SecondarySystem, ID_COH,
};
pub use tiles::{MemTile, NetTile};
