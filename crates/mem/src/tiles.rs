//! Memory tiles and network interface tiles.

use trips_micronet::Coord;

/// Cache line size throughout the memory system.
pub const LINE: usize = 64;

/// A 64 KB, 4-way memory tile bank with a single-entry MSHR (§3.6).
///
/// The bank holds tags only; line contents live in the backing store
/// (the standard simulator separation of timing and data). Each MT can
/// be configured as an L2 cache bank or as directly-addressed
/// scratchpad.
#[derive(Debug)]
pub struct MemTile {
    /// OCN coordinate of this bank's router.
    pub coord: Coord,
    /// True when the bank acts as scratchpad (no tags, no misses).
    pub scratchpad: bool,
    sets: usize,
    ways: usize,
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<u8>,
    /// The single-entry MSHR: an outstanding miss (line id, ready).
    mshr: Option<(u64, u64)>,
    /// Accesses served.
    pub hits: u64,
    /// Misses taken to DRAM.
    pub misses: u64,
}

impl MemTile {
    /// A bank of `kb` kilobytes with `ways` ways at `coord`.
    pub fn new(coord: Coord, kb: usize, ways: usize) -> MemTile {
        let sets = kb * 1024 / LINE / ways;
        MemTile {
            coord,
            scratchpad: false,
            sets,
            ways,
            tags: vec![vec![None; ways]; sets],
            lru: vec![0; sets],
            mshr: None,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    /// True when `line` is resident (scratchpad banks always hit).
    pub fn present(&self, line: u64) -> bool {
        if self.scratchpad {
            return true;
        }
        let s = self.set_of(line);
        self.tags[s].contains(&Some(line))
    }

    /// Installs `line`, evicting LRU.
    pub fn install(&mut self, line: u64) {
        if self.scratchpad || self.present(line) {
            return;
        }
        let s = self.set_of(line);
        let way = self.lru[s] as usize % self.ways;
        self.tags[s][way] = Some(line);
        self.lru[s] = (self.lru[s] + 1) % self.ways as u8;
    }

    /// True if the MSHR can accept a miss at `now`.
    pub fn mshr_free(&self, now: u64) -> bool {
        match self.mshr {
            None => true,
            Some((_, ready)) => ready <= now,
        }
    }

    /// Allocates the MSHR for `line`, filling at `ready`.
    pub fn mshr_alloc(&mut self, line: u64, ready: u64) {
        debug_assert!(self.mshr.is_none_or(|(_, r)| r <= ready));
        self.mshr = Some((line, ready));
    }

    /// Completes any fill due by `now`, returning the filled line.
    pub fn mshr_fill(&mut self, now: u64) -> Option<u64> {
        match self.mshr {
            Some((line, ready)) if ready <= now => {
                self.mshr = None;
                self.install(line);
                Some(line)
            }
            _ => None,
        }
    }
}

/// A network interface tile: a programmable routing table mapping an
/// address's home-bank index to an OCN coordinate (§3.6: "a
/// programmer can configure the memory system in a variety of ways").
#[derive(Debug, Clone)]
pub struct NetTile {
    /// OCN coordinate of the NT (edge of the mesh).
    pub coord: Coord,
    table: Vec<Coord>,
}

impl NetTile {
    /// An NT with a routing table over `banks` home slots.
    pub fn new(coord: Coord, table: Vec<Coord>) -> NetTile {
        NetTile { coord, table }
    }

    /// Destination router for a line address.
    pub fn route(&self, line: u64) -> Coord {
        self.table[(line as usize) % self.table.len()]
    }

    /// Reprograms the table (e.g. to split or fuse the L2).
    pub fn set_table(&mut self, table: Vec<Coord>) {
        assert!(!table.is_empty(), "routing table cannot be empty");
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_tags_and_lru() {
        let mut mt = MemTile::new(Coord { row: 1, col: 1 }, 64, 4);
        assert!(!mt.present(5));
        mt.install(5);
        assert!(mt.present(5));
        // Fill a set beyond its ways: 64KB/64B/4 = 256 sets; lines
        // 5, 261, 517, 773, 1029 share set 5.
        for k in 1..=4u64 {
            mt.install(5 + k * 256);
        }
        assert!(!mt.present(5), "LRU evicted the first line");
    }

    #[test]
    fn scratchpad_always_hits() {
        let mut mt = MemTile::new(Coord { row: 1, col: 1 }, 64, 4);
        mt.scratchpad = true;
        assert!(mt.present(0xdead));
    }

    #[test]
    fn single_entry_mshr() {
        let mut mt = MemTile::new(Coord { row: 1, col: 1 }, 64, 4);
        assert!(mt.mshr_free(0));
        mt.mshr_alloc(9, 50);
        assert!(!mt.mshr_free(10));
        assert_eq!(mt.mshr_fill(49), None);
        assert_eq!(mt.mshr_fill(50), Some(9));
        assert!(mt.present(9));
        assert!(mt.mshr_free(51));
    }

    #[test]
    fn nt_routing_reprogrammable() {
        let a = Coord { row: 1, col: 1 };
        let b = Coord { row: 2, col: 2 };
        let mut nt = NetTile::new(Coord { row: 0, col: 0 }, vec![a, b]);
        assert_eq!(nt.route(0), a);
        assert_eq!(nt.route(1), b);
        nt.set_table(vec![b]);
        assert_eq!(nt.route(0), b);
    }
}
