//! DMA engines (§5.1): programmable copies between any two regions of
//! the physical address space, issued as line reads and writes through
//! the secondary system's client ports.

use crate::system::{MemReq, SecondarySystem};
use crate::tiles::LINE;

/// One programmed transfer.
#[derive(Debug, Clone, Copy)]
pub struct DmaJob {
    /// Source byte address (line aligned).
    pub src: u64,
    /// Destination byte address (line aligned).
    pub dst: u64,
    /// Bytes to move (multiple of the line size).
    pub bytes: u64,
}

#[derive(Debug)]
enum State {
    Idle,
    Reading { line: u64 },
    Writing { line: u64, data: [u8; LINE] },
    AwaitAck { line: u64 },
}

/// A DMA engine bound to one OCN client port.
#[derive(Debug)]
pub struct DmaEngine {
    /// The engine's client port.
    pub port: usize,
    job: Option<DmaJob>,
    done_lines: u64,
    state: State,
    next_id: u64,
    /// Lines moved over the engine's lifetime.
    pub lines_moved: u64,
}

impl DmaEngine {
    /// An engine on `port`.
    pub fn new(port: usize) -> DmaEngine {
        DmaEngine { port, job: None, done_lines: 0, state: State::Idle, next_id: 1, lines_moved: 0 }
    }

    /// Programs a transfer; returns false if the engine is busy.
    ///
    /// # Panics
    ///
    /// Panics if the job is not line-aligned.
    pub fn start(&mut self, job: DmaJob) -> bool {
        assert_eq!(job.src % LINE as u64, 0, "unaligned source");
        assert_eq!(job.dst % LINE as u64, 0, "unaligned destination");
        assert_eq!(job.bytes % LINE as u64, 0, "partial-line transfer");
        if self.job.is_some() {
            return false;
        }
        self.job = Some(job);
        self.done_lines = 0;
        self.state = State::Idle;
        true
    }

    /// True when no transfer is in progress.
    pub fn idle(&self) -> bool {
        self.job.is_none()
    }

    /// One cycle: advance the transfer through the memory system.
    pub fn tick(&mut self, now: u64, l2: &mut SecondarySystem) {
        let Some(job) = self.job else { return };
        let total_lines = job.bytes / LINE as u64;
        match &self.state {
            State::Idle => {
                if self.done_lines >= total_lines {
                    self.job = None;
                    return;
                }
                let line = self.done_lines;
                let id = self.next_id;
                self.next_id += 1;
                if l2.request(now, self.port, MemReq::read_line(id, job.src + line * LINE as u64)) {
                    self.state = State::Reading { line };
                }
            }
            State::Reading { line } => {
                if let Some(resp) = l2.pop_response(now, self.port) {
                    self.state = State::Writing { line: *line, data: resp.data };
                }
            }
            State::Writing { line, data } => {
                let id = self.next_id;
                self.next_id += 1;
                let addr = job.dst + line * LINE as u64;
                if l2.request(now, self.port, MemReq::write_line(id, addr, *data)) {
                    // Wait for the write ack before the next line.
                    self.state = State::AwaitAck { line: *line };
                }
            }
            State::AwaitAck { line } => {
                if l2.pop_response(now, self.port).is_some() {
                    self.done_lines = line + 1;
                    self.lines_moved += 1;
                    self.state = State::Idle;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemConfig;

    #[test]
    fn dma_copies_a_region() {
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        let src = 0x10_000u64;
        let dst = 0x20_000u64;
        let payload: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
        l2.write_backing(src, &payload);
        let mut dma = DmaEngine::new(5);
        assert!(dma.start(DmaJob { src, dst, bytes: 256 }));
        assert!(!dma.start(DmaJob { src, dst, bytes: 64 }), "busy engine refuses");
        let mut t = 0;
        while !dma.idle() {
            dma.tick(t, &mut l2);
            l2.tick(t);
            t += 1;
            assert!(t < 50_000, "dma did not finish");
        }
        let mut out = vec![0u8; 256];
        l2.read_backing(dst, &mut out);
        assert_eq!(out, payload);
        assert_eq!(dma.lines_moved, 4);
    }
}
