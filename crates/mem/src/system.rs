//! The assembled secondary system: NUCA banks on the OCN mesh.
//!
//! The prototype instance is sixteen banks on the 4×10 OCN; an N-core
//! die tiles that block vertically per [`OcnGeometry`].

use trips_isa::mem::SparseMem;
use trips_micronet::{MeshFaultConfig, PacketMesh, PacketMsg, PacketStats, MAX_TAGS};

use crate::geometry::OcnGeometry;
use crate::tiles::{MemTile, NetTile, LINE};

/// Memory-system organization (§3.6 lists these configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMode {
    /// One 1 MB shared L2 striped over all sixteen banks of each
    /// block.
    L2Shared,
    /// Two independent 512 KB L2s per block, one per processor
    /// (west-side ports use the lower half of their block's banks,
    /// east-side ports the upper half; on the prototype block that is
    /// ports 0–9 vs. 10–19).
    L2Split,
    /// 1 MB of on-chip physical memory: no tags, no misses.
    Scratchpad,
}

/// Configuration of the secondary system.
///
/// Derives `PartialEq`/`Eq` so it can sit inside a core configuration
/// that is itself compared by the equivalence suites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Organization.
    pub mode: MemMode,
    /// NUCA banks **per block** (16 in the prototype, two columns of
    /// eight); an N-core die carries `banks × ⌈N/2⌉` banks in total.
    pub banks: usize,
    /// Kilobytes per bank.
    pub bank_kb: usize,
    /// Bank associativity.
    pub ways: usize,
    /// Bank access latency (tag + SRAM).
    pub bank_lat: u64,
    /// DRAM access latency through an SDC.
    pub dram_lat: u64,
    /// Per-virtual-channel router buffering, in packets.
    pub vc_cap: usize,
    /// Right-shift applied to the line index before bank routing:
    /// 0 stripes consecutive lines across banks (the prototype), `k`
    /// gives each bank runs of `2^k` consecutive lines — coarser
    /// interleavings trade bank-level parallelism for spatial locality
    /// at one bank (the `memsweep` binary sweeps this).
    pub interleave_shift: u32,
}

impl MemConfig {
    /// The prototype: 16 × 64 KB 4-way banks as a shared L2.
    pub fn prototype() -> MemConfig {
        MemConfig {
            mode: MemMode::L2Shared,
            banks: 16,
            bank_kb: 64,
            ways: 4,
            bank_lat: 3,
            dram_lat: 60,
            vc_cap: 2,
            interleave_shift: 0,
        }
    }
}

/// Request kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Fetch a 64-byte line.
    ReadLine,
    /// Write a 64-byte line back.
    WriteLine,
    /// Coherent line fetch (MSI GetS): identical to [`ReqKind::ReadLine`]
    /// on the wire and in the bank, but the home bank's directory slice
    /// records the requester as a sharer (and downgrades a remote M
    /// owner to S). Only sent by shared-memory adapters.
    GetS,
    /// Coherent writeback (MSI GetM): identical to
    /// [`ReqKind::WriteLine`] on the wire and in the bank, but the home
    /// directory claims ownership for the requester, invalidates every
    /// other sharer over the OCN, and withholds the write
    /// acknowledgement until every invalidation is acknowledged — so
    /// the ESN store-completion role now spans the whole coherence
    /// transaction.
    GetM,
    /// A client port's acknowledgement of a received invalidation
    /// (one header flit back to the home bank). Processed at the
    /// bank's router on arrival — no service slot, no tag access.
    InvalAck,
}

/// Marker bit for coherence-token ids: invalidations are delivered as
/// unsolicited responses with `id = ID_COH | line`, and their acks echo
/// the same id, so adapters can separate protocol tokens from the
/// request/response ledger.
pub const ID_COH: u64 = 1 << 62;

/// A request from an IT/DT port into the secondary system.
#[derive(Debug, Clone)]
pub struct MemReq {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Line-aligned byte address.
    pub addr: u64,
    /// Kind.
    pub kind: ReqKind,
    /// Line contents for writes.
    pub data: [u8; LINE],
}

impl MemReq {
    /// A line read.
    pub fn read_line(id: u64, addr: u64) -> MemReq {
        MemReq { id, addr: addr & !(LINE as u64 - 1), kind: ReqKind::ReadLine, data: [0; LINE] }
    }

    /// A line writeback.
    pub fn write_line(id: u64, addr: u64, data: [u8; LINE]) -> MemReq {
        MemReq { id, addr: addr & !(LINE as u64 - 1), kind: ReqKind::WriteLine, data }
    }

    /// A coherent read (MSI GetS).
    pub fn get_s(id: u64, addr: u64) -> MemReq {
        MemReq { id, addr: addr & !(LINE as u64 - 1), kind: ReqKind::GetS, data: [0; LINE] }
    }

    /// A coherent writeback (MSI GetM).
    pub fn get_m(id: u64, addr: u64, data: [u8; LINE]) -> MemReq {
        MemReq { id, addr: addr & !(LINE as u64 - 1), kind: ReqKind::GetM, data }
    }

    /// An invalidation acknowledgement for `line` (echoes the
    /// invalidation's `ID_COH | line` id back to the home bank).
    pub fn inval_ack(line: u64) -> MemReq {
        MemReq { id: ID_COH | line, addr: line << 6, kind: ReqKind::InvalAck, data: [0; LINE] }
    }
}

/// A response to a [`MemReq`].
#[derive(Debug, Clone)]
pub struct MemResp {
    /// The request's id.
    pub id: u64,
    /// The request's address.
    pub addr: u64,
    /// Line contents for reads.
    pub data: [u8; LINE],
}

#[derive(Debug, Clone)]
enum Packet {
    Req {
        port: usize,
        req: MemReq,
    },
    Resp {
        port: usize,
        resp: MemResp,
        /// Flit count and virtual channel, kept with the payload so a
        /// refused injection can be retried without re-deriving them
        /// (and without re-running the bank access that produced it).
        flits: u32,
        vc: u8,
    },
}

/// The observable state of one directory line, for the coherence
/// invariant suite and occupancy reports (DESIGN.md §5g).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirView {
    /// The home bank holding this slice entry.
    pub bank: usize,
    /// The 64-byte line index (`addr / 64`).
    pub line: u64,
    /// The port holding M, if any. A nonempty `pending_ports` means
    /// the claim is transient: invalidations are still in flight.
    pub owner_port: Option<u16>,
    /// Ports the directory believes hold S copies. An
    /// over-approximation: L1 banks evict silently, so a listed port
    /// may no longer hold the line — but an unlisted one never does.
    pub sharer_ports: Vec<u16>,
    /// Ports whose invalidation ack is still owed before the deferred
    /// write ack of an in-flight GetM may be released. A victim stays
    /// listed here (it may still hold its copy until the invalidation
    /// reaches it), which is what keeps the inclusion invariant
    /// checkable every tick.
    pub pending_ports: Vec<u16>,
}

/// Aggregate coherence counters (all zero unless the system was built
/// by [`SecondarySystem::for_cores_shared`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohSnapshot {
    /// GetS transactions matured at a directory.
    pub gets: u64,
    /// GetM transactions matured at a directory.
    pub getms: u64,
    /// Invalidations issued by directories.
    pub invals_sent: u64,
    /// Invalidation acks processed by directories.
    pub inval_acks: u64,
    /// GetM transactions whose write ack had to wait for invalidations.
    pub deferred_acks: u64,
    /// Directory entries currently allocated across all slices.
    pub dir_lines: usize,
    /// High-water mark of `dir_lines`.
    pub dir_highwater: usize,
}

/// One line's directory state, co-located with its home bank. Stable
/// states are I (no entry), S (`owner: None`, nonempty sharers), and
/// M (`owner: Some`, `pending` empty); the single transient is the
/// GetM mid-invalidation (`pending` nonempty), during which the write
/// ack is parked in `deferred` (DESIGN.md §5g).
#[derive(Debug, Default)]
struct DirEntry {
    owner: Option<u16>,
    sharers: Vec<u16>,
    /// Victim ports whose invalidation ack has not arrived yet.
    pending: Vec<u16>,
    /// (port, id, addr) of the write ack withheld until the last
    /// invalidation ack arrives.
    deferred: Option<(usize, u64, u64)>,
}

/// The secondary memory system: banks, NTs, the OCN, and the DRAM
/// backing store.
pub struct SecondarySystem {
    cfg: MemConfig,
    /// The floorplan: prototype blocks tiled per the die's core count
    /// (4×10 mesh, 16 banks, 20 ports per block — Figure 6).
    geo: OcnGeometry,
    ocn: PacketMesh<Packet>,
    banks: Vec<MemTile>,
    nts: Vec<NetTile>,
    backing: SparseMem,
    /// Requests the bank is working on: (ready_at, bank, packet).
    in_bank: Vec<(u64, usize, Packet)>,
    /// Live requests per bank (accepted, response not yet injected).
    in_bank_count: Vec<usize>,
    /// High-water mark of `in_bank_count`, per bank.
    bank_peak: Vec<u64>,
    /// Client tag carried by each port's packets (core attribution in
    /// a multi-core chip; all zero for a single client).
    port_tag: Vec<u8>,
    /// Shared-memory mode: every bank carries a directory slice and
    /// GetS/GetM requests drive the MSI protocol. Off for every system
    /// built by [`SecondarySystem::for_cores`], which keeps the
    /// multiprogrammed path bit-identical.
    coherent: bool,
    /// Per-bank directory slices, keyed by line index. A `BTreeMap` so
    /// iteration (invariant walks, reports) is deterministic.
    dir: Vec<std::collections::BTreeMap<u64, DirEntry>>,
    /// Coherence counters (see [`CohSnapshot`]).
    coh: CohSnapshot,
    /// Coherence tokens (invalidations + acks) currently inside
    /// [`SecondarySystem::in_system`] — they sit outside the
    /// request/response ledger, so conservation audits subtract them.
    coh_in_system: i64,
    /// GetM transactions whose write ack is currently parked at a
    /// directory (no packet anywhere in the system represents them).
    dir_deferred_now: usize,
    /// Total requests accepted.
    pub requests: u64,
    /// Total DRAM accesses.
    pub dram_accesses: u64,
}

impl SecondarySystem {
    /// Builds the prototype-die system: one block, the geometry the
    /// solo `Processor` path and the dual-core chip have always used.
    pub fn new(cfg: MemConfig) -> SecondarySystem {
        SecondarySystem::for_cores(cfg, 2)
    }

    /// Builds the system for an `ncores`-core die: `⌈ncores/2⌉`
    /// prototype blocks tiled vertically, each with its own
    /// `cfg.banks` banks and twenty client ports (see
    /// [`OcnGeometry`]). Every port's routing table stripes over its
    /// **own block's** banks in prototype order, so each block is the
    /// prototype system translated — N=1/2 build exactly the die
    /// [`SecondarySystem::new`] always built.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ncores <= 16` (see
    /// [`OcnGeometry::for_cores`]).
    pub fn for_cores(cfg: MemConfig, ncores: usize) -> SecondarySystem {
        SecondarySystem::build(cfg, ncores, false)
    }

    /// Builds the shared-memory system for an `ncores`-core die: the
    /// same banks and OCN as [`SecondarySystem::for_cores`], but every
    /// port's routing table stripes over **all** of the die's banks
    /// (per-block striping would home the same line at a different
    /// bank per block, so cross-block sharing would never meet at one
    /// directory), and each bank carries an MSI directory slice for
    /// the lines it homes. On a one-block die in `L2Shared` mode the
    /// routing is identical to the multiprogrammed system.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ncores <= 16`.
    pub fn for_cores_shared(cfg: MemConfig, ncores: usize) -> SecondarySystem {
        SecondarySystem::build(cfg, ncores, true)
    }

    fn build(cfg: MemConfig, ncores: usize, coherent: bool) -> SecondarySystem {
        let geo = OcnGeometry::with_banks(ncores, cfg.banks);
        let banks: Vec<MemTile> = (0..geo.banks())
            .map(|i| {
                let mut mt = MemTile::new(geo.bank_coord(i), cfg.bank_kb, cfg.ways);
                mt.scratchpad = cfg.mode == MemMode::Scratchpad;
                mt
            })
            .collect();
        let nts = (0..geo.ports())
            .map(|p| {
                let block = geo.block_banks(geo.port_block(p));
                let table: Vec<usize> = if coherent {
                    // One die-wide stripe: every port homes line L at
                    // the same bank, so each line has exactly one
                    // directory slice.
                    (0..geo.banks()).collect()
                } else {
                    match cfg.mode {
                        MemMode::L2Shared | MemMode::Scratchpad => block.collect(),
                        MemMode::L2Split => {
                            let half = cfg.banks / 2;
                            if geo.is_west_port(p) {
                                block.take(half).collect()
                            } else {
                                block.skip(half).collect()
                            }
                        }
                    }
                };
                NetTile::new(
                    geo.port_coord(p),
                    table.into_iter().map(|i| geo.bank_coord(i)).collect(),
                )
            })
            .collect();
        SecondarySystem {
            ocn: PacketMesh::new(geo.rows(), geo.cols(), cfg.vc_cap),
            banks,
            nts,
            backing: SparseMem::new(),
            in_bank: Vec::new(),
            in_bank_count: vec![0; geo.banks()],
            bank_peak: vec![0; geo.banks()],
            port_tag: vec![0; geo.ports()],
            coherent,
            dir: (0..geo.banks()).map(|_| std::collections::BTreeMap::new()).collect(),
            coh: CohSnapshot::default(),
            coh_in_system: 0,
            dir_deferred_now: 0,
            requests: 0,
            dram_accesses: 0,
            cfg,
            geo,
        }
    }

    /// Whether this system runs the MSI directory protocol (built by
    /// [`SecondarySystem::for_cores_shared`]).
    pub fn is_coherent(&self) -> bool {
        self.coherent
    }

    /// Coherence counters and directory occupancy (all zero when the
    /// system is not coherent).
    pub fn coherence(&self) -> CohSnapshot {
        let mut snap = self.coh;
        snap.dir_lines = self.dir.iter().map(|d| d.len()).sum();
        snap
    }

    /// Coherence tokens (invalidations and their acks) currently
    /// inside [`SecondarySystem::in_system`]. These packets belong to
    /// no request/response pair, so conservation audits subtract them:
    /// `accepted - delivered == in_system() - coh_tokens_in_system()
    /// + dir_deferred()`.
    pub fn coh_tokens_in_system(&self) -> i64 {
        self.coh_in_system
    }

    /// GetM transactions whose write ack is parked at a directory
    /// awaiting invalidation acks — outstanding to their issuer, but
    /// represented by no packet in the system.
    pub fn dir_deferred(&self) -> usize {
        self.dir_deferred_now
    }

    /// The client tag of `port` (see [`SecondarySystem::set_port_tag`]).
    pub fn port_tag_of(&self, port: usize) -> u8 {
        self.port_tag[port]
    }

    /// Every allocated directory entry, in (bank, line) order — the
    /// raw material of the SWMR and inclusion invariants.
    pub fn dir_views(&self) -> Vec<DirView> {
        self.dir
            .iter()
            .enumerate()
            .flat_map(|(bank, slice)| {
                slice.iter().map(move |(&line, e)| DirView {
                    bank,
                    line,
                    owner_port: e.owner,
                    sharer_ports: e.sharers.clone(),
                    pending_ports: e.pending.clone(),
                })
            })
            .collect()
    }

    /// The die floorplan this system was built for.
    pub fn geometry(&self) -> &OcnGeometry {
        &self.geo
    }

    /// Installs (or clears) a timing-fault configuration on the OCN —
    /// output-port stall bursts and arbitration rotation, as on the
    /// core's operand network (see
    /// [`MeshFaultConfig`](trips_micronet::MeshFaultConfig)).
    pub fn set_ocn_fault(&mut self, cfg: Option<&MeshFaultConfig>) {
        self.ocn.set_fault(cfg);
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Tags every packet of `port` with `tag` (0..[`MAX_TAGS`]) — a
    /// multi-core chip tags each core's ports with the core index so
    /// OCN occupancy and delivery counts attribute per core. Tags are
    /// attribution only and never change routing or arbitration.
    ///
    /// # Panics
    ///
    /// Panics if `port` is beyond the die's ports or
    /// `tag >= MAX_TAGS`.
    pub fn set_port_tag(&mut self, port: usize, tag: u8) {
        assert!((tag as usize) < MAX_TAGS, "tag out of range: {tag}");
        self.port_tag[port] = tag;
    }

    /// The bank a request from `port` to `addr` is homed at — the
    /// routing decision [`SecondarySystem::request`] will make, exposed
    /// so a chip-level arbiter can detect two clients converging on
    /// one bank before either injects.
    pub fn home_bank(&self, port: usize, addr: u64) -> usize {
        let dst = self.nts[port].route((addr / LINE as u64) >> self.cfg.interleave_shift);
        let bank = self.geo.bank_index(dst);
        debug_assert_eq!(self.geo.bank_coord(bank), dst);
        bank
    }

    /// Initializes backing-store contents (DRAM image).
    pub fn write_backing(&mut self, addr: u64, data: &[u8]) {
        self.backing.write_bytes(addr, data);
    }

    /// Reads backing-store contents (for tests).
    pub fn read_backing(&self, addr: u64, out: &mut [u8]) {
        self.backing.read_bytes(addr, out);
    }

    /// Injects a request at client port `port` (0..20). Returns false
    /// if the network refused it this cycle.
    pub fn request(&mut self, now: u64, port: usize, req: MemReq) -> bool {
        let src = self.geo.port_coord(port);
        let dst = self.nts[port].route((req.addr / LINE as u64) >> self.cfg.interleave_shift);
        // A line plus header: five 16-byte flits; requests travel VC0,
        // writes VC1 (separating traffic classes). The coherent kinds
        // ride the same classes as their plain counterparts; inval
        // acks are a lone header flit on the request channel.
        let (flits, vc) = match req.kind {
            ReqKind::ReadLine | ReqKind::GetS | ReqKind::InvalAck => (1, 0),
            ReqKind::WriteLine | ReqKind::GetM => (5, 1),
        };
        let is_ack = req.kind == ReqKind::InvalAck;
        let ok = self.ocn.inject(
            now,
            PacketMsg::new(src, dst, Packet::Req { port, req }, flits, vc)
                .with_tag(self.port_tag[port]),
        );
        if ok {
            if is_ack {
                // A protocol token, not a client transaction: it has
                // no response and stays off the request ledger.
                self.coh_in_system += 1;
            } else {
                self.requests += 1;
            }
        }
        ok
    }

    /// Pops a response for `port`, if one has arrived by `now`.
    pub fn pop_response(&mut self, now: u64, port: usize) -> Option<MemResp> {
        match self.ocn.eject(now, self.geo.port_coord(port)) {
            Some(m) => match m.payload {
                Packet::Resp { resp, .. } => {
                    if resp.id & ID_COH != 0 {
                        // An invalidation leaves the system here; its
                        // ack re-enters via `request`.
                        self.coh_in_system -= 1;
                    }
                    Some(resp)
                }
                Packet::Req { .. } => unreachable!("request delivered to a client port"),
            },
            None => None,
        }
    }

    /// Requests currently inside the system: OCN router queues,
    /// undrained eject queues, and bank service slots. Every accepted
    /// request is exactly one packet somewhere (the request on its way
    /// in, the bank access, or the response on its way out), so
    /// `accepted - delivered == in_system` at every tick boundary —
    /// the request/response conservation invariant the fuzzing harness
    /// checks. In a coherent system the equation gains two terms:
    /// invalidations and their acks are packets outside the ledger
    /// ([`SecondarySystem::coh_tokens_in_system`]) and a deferred
    /// write ack is a ledgered transaction with no packet
    /// ([`SecondarySystem::dir_deferred`]), giving
    /// `accepted - delivered ==
    ///  in_system - coh_tokens_in_system + dir_deferred`.
    pub fn in_system(&self) -> usize {
        self.ocn.in_flight() + self.ocn.queued_ejects() + self.in_bank.len()
    }

    /// Cycle of the next state change inside the secondary system, for
    /// the epoch-skipping scheduler. While any packet is in an OCN
    /// router or an undrained eject queue the system must tick every
    /// cycle (`Some(now)`); with the network empty the only future
    /// work is bank service slots maturing, so the answer is the
    /// earliest `ready` among them (clamped to `now` for any already
    /// due). `None` means the system is quiescent and cannot act until
    /// a new request is injected.
    ///
    /// Bank MSHR fill times need no entry of their own: a pending
    /// fill always coexists with the `in_bank` request that caused it,
    /// whose `ready` (`dram_lat + bank_lat`) is strictly later than
    /// the fill's (`dram_lat`), and [`MemTile::mshr_fill`] is lazy —
    /// it completes any fill due by `now` — so a skip that lands on
    /// the request's completion cycle fills the MSHR first, exactly as
    /// the cycle-by-cycle schedule would have by then. Nothing can
    /// observe the bank's tags in between because observation requires
    /// a packet ejecting at the bank, and the OCN is empty.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.ocn.in_flight() > 0 || self.ocn.queued_ejects() > 0 {
            return Some(now);
        }
        self.in_bank.iter().map(|&(ready, _, _)| ready.max(now)).min()
    }

    /// OCN aggregate statistics (hops, queueing, inject stalls).
    pub fn ocn_stats(&self) -> PacketStats {
        self.ocn.stats
    }

    /// Per-tag OCN in-flight high-water marks (see [`set_port_tag`]).
    ///
    /// [`set_port_tag`]: SecondarySystem::set_port_tag
    pub fn ocn_tag_highwater(&self) -> [usize; MAX_TAGS] {
        self.ocn.tag_highwater()
    }

    /// Per-tag OCN (injected, ejected) packet counts.
    pub fn ocn_tag_counts(&self) -> [(u64, u64); MAX_TAGS] {
        self.ocn.tag_counts()
    }

    /// Per-bank high-water marks of concurrently-serviced requests.
    pub fn bank_peaks(&self) -> &[u64] {
        &self.bank_peak
    }

    /// OCN conservation audit (see
    /// [`PacketMesh::audit`](trips_micronet::PacketMesh)).
    ///
    /// # Errors
    ///
    /// A description of the first violated accounting equation.
    pub fn audit(&self) -> Result<(), String> {
        self.ocn.audit()
    }

    /// One cycle: move the network, run the banks.
    pub fn tick(&mut self, now: u64) {
        // Bank-side: accept packets at each bank's router.
        for (bi, bank) in self.banks.iter_mut().enumerate() {
            // Complete an outstanding fill.
            if bank.mshr_fill(now).is_some() {
                // Line now present; waiting request retried below.
            }
            if let Some(m) = self.ocn.eject(now, bank.coord) {
                match m.payload {
                    Packet::Req { port, req } if req.kind == ReqKind::InvalAck => {
                        // Processed on arrival: no service slot, no tag
                        // access — the ack only moves directory state.
                        self.coh_in_system -= 1;
                        self.coh.inval_acks += 1;
                        let line = req.addr / LINE as u64;
                        if let Some(e) = self.dir[bi].get_mut(&line) {
                            e.pending.retain(|&p| p != port as u16);
                            if e.pending.is_empty() {
                                if let Some((p, id, addr)) = e.deferred.take() {
                                    // Every sharer is gone: release the
                                    // writer's deferred ESN write ack.
                                    self.dir_deferred_now -= 1;
                                    let resp = MemResp { id, addr, data: [0; LINE] };
                                    self.in_bank.push((
                                        now,
                                        bi,
                                        Packet::Resp { port: p, resp, flits: 1, vc: 2 },
                                    ));
                                    self.in_bank_count[bi] += 1;
                                    self.bank_peak[bi] =
                                        self.bank_peak[bi].max(self.in_bank_count[bi] as u64);
                                }
                            }
                        }
                    }
                    Packet::Req { port, req } => {
                        let line = req.addr / LINE as u64;
                        let ready = if bank.present(line) {
                            bank.hits += 1;
                            now + self.cfg.bank_lat
                        } else if bank.mshr_free(now) {
                            bank.misses += 1;
                            self.dram_accesses += 1;
                            bank.mshr_alloc(line, now + self.cfg.dram_lat);
                            now + self.cfg.dram_lat + self.cfg.bank_lat
                        } else {
                            // Single-entry MSHR busy: serialize behind
                            // the outstanding fill.
                            bank.misses += 1;
                            self.dram_accesses += 1;
                            now + 2 * self.cfg.dram_lat + self.cfg.bank_lat
                        };
                        self.in_bank.push((ready, bi, Packet::Req { port, req }));
                        self.in_bank_count[bi] += 1;
                        self.bank_peak[bi] = self.bank_peak[bi].max(self.in_bank_count[bi] as u64);
                    }
                    Packet::Resp { .. } => unreachable!("response delivered to a bank"),
                }
            }
        }

        // Finish bank accesses and send responses. The bank access
        // runs exactly once; a response the network refuses is retried
        // as a ready-made `Resp` packet, so a congested OCN delays an
        // acknowledgement but can never drop it or repeat the access.
        let mut k = 0;
        while k < self.in_bank.len() {
            if self.in_bank[k].0 <= now {
                let (_, bi, pkt) = self.in_bank.swap_remove(k);
                // A directory line mid-invalidation admits no new
                // coherent transaction: retry the matured request next
                // cycle (the pending acks resolve at the router accept
                // path, never here, so this cannot deadlock).
                if let Packet::Req { req, .. } = &pkt {
                    if matches!(req.kind, ReqKind::GetS | ReqKind::GetM) {
                        let line = req.addr / LINE as u64;
                        if self.dir[bi].get(&line).is_some_and(|e| !e.pending.is_empty()) {
                            self.in_bank.push((now + 1, bi, pkt));
                            continue;
                        }
                    }
                }
                let (port, resp, flits, vc) = match pkt {
                    Packet::Req { port, req } => match req.kind {
                        ReqKind::WriteLine | ReqKind::GetM => {
                            self.backing.write_bytes(req.addr, &req.data);
                            self.banks[bi].install(req.addr / LINE as u64);
                            if req.kind == ReqKind::GetM && self.dir_getm(now, bi, port, &req) {
                                // The ack is parked behind invalidations;
                                // the GetM's own service slot ends here.
                                self.in_bank_count[bi] = self.in_bank_count[bi].saturating_sub(1);
                                continue;
                            }
                            // Writes are acknowledged with a header flit.
                            let resp = MemResp { id: req.id, addr: req.addr, data: [0; LINE] };
                            (port, resp, 1, 2)
                        }
                        ReqKind::ReadLine | ReqKind::GetS => {
                            if req.kind == ReqKind::GetS {
                                self.dir_gets(bi, port, req.addr / LINE as u64);
                            }
                            let mut data = [0u8; LINE];
                            self.backing.read_bytes(req.addr, &mut data);
                            // A full line back: five flits on VC2/3.
                            (port, MemResp { id: req.id, addr: req.addr, data }, 5, 3)
                        }
                        ReqKind::InvalAck => unreachable!("acks are consumed at the router"),
                    },
                    Packet::Resp { port, resp, flits, vc } => (port, resp, flits, vc),
                };
                let accepted = self.ocn.inject(
                    now,
                    PacketMsg::new(
                        self.banks[bi].coord,
                        self.geo.port_coord(port),
                        Packet::Resp { port, resp: resp.clone(), flits, vc },
                        flits,
                        vc,
                    )
                    .with_tag(self.port_tag[port]),
                );
                if accepted {
                    self.in_bank_count[bi] = self.in_bank_count[bi].saturating_sub(1);
                } else {
                    // Retry next cycle without repeating the access.
                    self.in_bank.push((now + 1, bi, Packet::Resp { port, resp, flits, vc }));
                }
            } else {
                k += 1;
            }
        }

        self.ocn.tick(now);
    }

    /// GetS directory action at the home bank: record `port` as a
    /// sharer, downgrading a remote M owner to S (the old owner keeps
    /// its copy — the value plane is core-side, so there is no dirty
    /// data to fetch, see DESIGN.md §5g).
    fn dir_gets(&mut self, bi: usize, port: usize, line: u64) {
        self.coh.gets += 1;
        let me = port as u16;
        let e = self.dir[bi].entry(line).or_default();
        if let Some(o) = e.owner {
            if o != me {
                e.owner = None;
                if !e.sharers.contains(&o) {
                    e.sharers.push(o);
                }
            }
        }
        if e.owner != Some(me) && !e.sharers.contains(&me) {
            e.sharers.push(me);
        }
        self.track_dir_highwater();
    }

    /// GetM directory action at the home bank: claim ownership for
    /// `port` and invalidate every other holder. Returns true when the
    /// write ack was parked behind the invalidations (their acks will
    /// release it at the router accept path).
    fn dir_getm(&mut self, now: u64, bi: usize, port: usize, req: &MemReq) -> bool {
        let line = req.addr / LINE as u64;
        self.coh.getms += 1;
        let me = port as u16;
        let victims: Vec<u16>;
        let deferred;
        {
            let e = self.dir[bi].entry(line).or_default();
            let mut v: Vec<u16> = e.sharers.iter().copied().filter(|&p| p != me).collect();
            if let Some(o) = e.owner {
                if o != me && !v.contains(&o) {
                    v.push(o);
                }
            }
            e.owner = Some(me);
            e.sharers.clear();
            deferred = !v.is_empty();
            if deferred {
                e.pending = v.clone();
                e.deferred = Some((port, req.id, req.addr));
            }
            victims = v;
        }
        self.track_dir_highwater();
        if !deferred {
            return false;
        }
        self.coh.deferred_acks += 1;
        self.dir_deferred_now += 1;
        for v in victims {
            self.coh.invals_sent += 1;
            self.coh_in_system += 1;
            let resp = MemResp { id: ID_COH | line, addr: req.addr, data: [0; LINE] };
            self.in_bank.push((now, bi, Packet::Resp { port: v as usize, resp, flits: 1, vc: 2 }));
            self.in_bank_count[bi] += 1;
            self.bank_peak[bi] = self.bank_peak[bi].max(self.in_bank_count[bi] as u64);
        }
        true
    }

    fn track_dir_highwater(&mut self) {
        let lines: usize = self.dir.iter().map(|d| d.len()).sum();
        self.coh.dir_highwater = self.coh.dir_highwater.max(lines);
    }

    /// Aggregate hit rate across banks.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.banks.iter().map(|b| b.hits).sum();
        let misses: u64 = self.banks.iter().map(|b| b.misses).sum();
        if hits + misses == 0 {
            return 1.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Per-bank (hits, misses), for NUCA distribution checks.
    pub fn bank_stats(&self) -> Vec<(u64, u64)> {
        self.banks.iter().map(|b| (b.hits, b.misses)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_resp(
        l2: &mut SecondarySystem,
        port: usize,
        start: u64,
        limit: u64,
    ) -> (MemResp, u64) {
        let mut t = start;
        loop {
            l2.tick(t);
            t += 1;
            if let Some(r) = l2.pop_response(t, port) {
                return (r, t - start);
            }
            assert!(t < start + limit, "no response within {limit}");
        }
    }

    #[test]
    fn read_misses_then_hits() {
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        l2.write_backing(0x1000, &[0xab; 64]);
        l2.request(0, 0, MemReq::read_line(1, 0x1000));
        let (r1, lat1) = run_until_resp(&mut l2, 0, 0, 1000);
        assert_eq!(r1.data[0], 0xab);
        assert!(lat1 > l2.config().dram_lat, "first touch goes to DRAM: {lat1}");
        let t0 = 2000;
        l2.request(t0, 0, MemReq::read_line(2, 0x1000));
        let (_, lat2) = run_until_resp(&mut l2, 0, t0, 1000);
        assert!(lat2 < lat1, "second touch hits in the bank: {lat2} vs {lat1}");
    }

    #[test]
    fn writeback_then_read_roundtrip() {
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        let mut line = [0u8; 64];
        line[7] = 99;
        l2.request(0, 3, MemReq::write_line(5, 0x2040, line));
        let (ack, _) = run_until_resp(&mut l2, 3, 0, 1000);
        assert_eq!(ack.id, 5);
        l2.request(500, 3, MemReq::read_line(6, 0x2040));
        let (r, _) = run_until_resp(&mut l2, 3, 500, 1000);
        assert_eq!(r.data[7], 99);
    }

    #[test]
    fn nuca_latency_depends_on_bank_distance() {
        // Two lines homed at different banks see different round-trip
        // latencies from the same port — the static-NUCA property.
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        // Warm both lines.
        l2.request(0, 0, MemReq::read_line(1, 0)); // line 0 -> bank 0 (near row 0)
        run_until_resp(&mut l2, 0, 0, 1000);
        l2.request(2000, 0, MemReq::read_line(2, 7 * 64)); // line 7 -> bank 7 (far row)
        run_until_resp(&mut l2, 0, 2000, 1000);
        let (_, near) = {
            l2.request(4000, 0, MemReq::read_line(3, 0));
            run_until_resp(&mut l2, 0, 4000, 1000)
        };
        let (_, far) = {
            l2.request(6000, 0, MemReq::read_line(4, 7 * 64));
            run_until_resp(&mut l2, 0, 6000, 1000)
        };
        assert!(far > near, "far bank must cost more hops: near={near} far={far}");
    }

    #[test]
    fn split_mode_partitions_banks() {
        let cfg = MemConfig { mode: MemMode::L2Split, ..MemConfig::prototype() };
        let mut l2 = SecondarySystem::new(cfg);
        // Port 0 (processor 0) and port 10 (processor 1) read the same
        // line; it must land in different halves.
        l2.request(0, 0, MemReq::read_line(1, 0x8000));
        run_until_resp(&mut l2, 0, 0, 1000);
        l2.request(3000, 10, MemReq::read_line(2, 0x8000));
        run_until_resp(&mut l2, 10, 3000, 1000);
        let stats = l2.bank_stats();
        let top: u64 = stats[..8].iter().map(|s| s.0 + s.1).sum();
        let bottom: u64 = stats[8..].iter().map(|s| s.0 + s.1).sum();
        assert!(top > 0 && bottom > 0, "both halves served their processor");
    }

    #[test]
    fn scratchpad_never_misses() {
        let cfg = MemConfig { mode: MemMode::Scratchpad, ..MemConfig::prototype() };
        let mut l2 = SecondarySystem::new(cfg);
        for i in 0..8u64 {
            let t = i * 500;
            l2.request(t, 0, MemReq::read_line(i, i * 64 * 131));
            run_until_resp(&mut l2, 0, t, 400);
        }
        assert_eq!(l2.dram_accesses, 0);
        assert_eq!(l2.hit_rate(), 1.0);
    }

    #[test]
    fn two_ports_hammering_one_bank_see_bounded_waits() {
        // Starvation check: two clients on opposite edge columns keep
        // one outstanding read each to the *same* line — every access
        // serializes at one bank. The OCN's round-robin arbitration
        // must keep both making progress with a bounded round trip.
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        l2.write_backing(0x3000, &[1; 64]);
        let ports = [2usize, 13usize];
        assert_eq!(
            l2.home_bank(ports[0], 0x3000),
            l2.home_bank(ports[1], 0x3000),
            "both clients must be homed at the same bank for this test"
        );
        const ROUNDS: usize = 50;
        // Generous bound: a DRAM miss plus worst-case OCN queueing is
        // well under this; an unfair arbiter that parks one client
        // behind the other's stream blows through it.
        const MAX_WAIT: u64 = 1500;
        let mut issued_at = [0u64, 0];
        let mut pending = [false; 2];
        let mut done = [0usize; 2];
        let mut worst = [0u64; 2];
        let mut id = 0u64;
        let mut t = 0u64;
        while done.iter().any(|&d| d < ROUNDS) {
            for (c, &port) in ports.iter().enumerate() {
                if !pending[c] && done[c] < ROUNDS {
                    id += 1;
                    if l2.request(t, port, MemReq::read_line(id, 0x3000)) {
                        pending[c] = true;
                        issued_at[c] = t;
                    }
                }
            }
            l2.tick(t);
            t += 1;
            for (c, &port) in ports.iter().enumerate() {
                if pending[c] && l2.pop_response(t, port).is_some() {
                    pending[c] = false;
                    done[c] += 1;
                    worst[c] = worst[c].max(t - issued_at[c]);
                }
                if pending[c] {
                    assert!(
                        t - issued_at[c] < MAX_WAIT,
                        "port {port} starved: outstanding {} cycles (done {done:?})",
                        t - issued_at[c]
                    );
                }
            }
        }
        assert_eq!(done, [ROUNDS; 2]);
        for (c, &port) in ports.iter().enumerate() {
            assert!(worst[c] < MAX_WAIT, "port {port} worst wait {} >= {MAX_WAIT}", worst[c]);
        }
    }

    #[test]
    fn conservation_holds_under_concurrent_clients() {
        // Ten clients issue interleaved reads and writes while the
        // accounting equation `accepted - delivered == in_system` and
        // the OCN's own audit are checked at every tick boundary.
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        let ports: Vec<usize> = (0..20).step_by(2).collect();
        let mut accepted = 0u64;
        let mut delivered = 0u64;
        let mut id = 0u64;
        let mut t = 0u64;
        while t < 2000 || accepted != delivered {
            assert!(t < 100_000, "drain did not converge: {accepted} accepted, {delivered} out");
            if t < 2000 {
                for (c, &port) in ports.iter().enumerate() {
                    if t % 3 != c as u64 % 3 {
                        continue; // stagger issue so ports overlap, not lockstep
                    }
                    id += 1;
                    let addr = (id * 64) % 0x8000;
                    let req = if id.is_multiple_of(4) {
                        MemReq::write_line(id, addr, [id as u8; 64])
                    } else {
                        MemReq::read_line(id, addr)
                    };
                    if l2.request(t, port, req) {
                        accepted += 1;
                    }
                }
            }
            l2.tick(t);
            for &port in &ports {
                while l2.pop_response(t + 1, port).is_some() {
                    delivered += 1;
                }
            }
            assert_eq!(
                accepted - delivered,
                l2.in_system() as u64,
                "conservation broken at cycle {t}"
            );
            l2.audit().unwrap_or_else(|e| panic!("OCN audit failed at cycle {t}: {e}"));
            t += 1;
        }
        assert!(accepted > 1000, "the sweep must actually exercise concurrency: {accepted}");
        assert_eq!(accepted, delivered, "every accepted request must drain by the end");
        assert_eq!(l2.in_system(), 0);
    }

    #[test]
    fn many_ports_hammering_one_bank_on_a_sixteen_core_die_see_bounded_waits() {
        // The widest die (8 stacked blocks, 160 ports): N clients
        // spread over block 0's west and east edges keep one
        // outstanding read each to the same line, so every access
        // serializes at one bank. Round-robin OCN arbitration must
        // keep all of them progressing with waits that grow no worse
        // than linearly in the client count — and the traffic must
        // stay confined to the block that owns the bank.
        for n in [4usize, 8, 16] {
            let mut l2 = SecondarySystem::for_cores(MemConfig::prototype(), 16);
            let west = l2.geometry().west_ports();
            l2.write_backing(0x3000, &[1; 64]);
            let ports: Vec<usize> = (0..n / 2).flat_map(|i| [i, west + i]).collect();
            let home = l2.home_bank(ports[0], 0x3000);
            for &p in &ports {
                assert_eq!(l2.home_bank(p, 0x3000), home, "port {p} homed elsewhere");
            }
            const ROUNDS: usize = 20;
            let max_wait: u64 = 1000 + 300 * n as u64;
            let mut issued_at = vec![0u64; n];
            let mut pending = vec![false; n];
            let mut done = vec![0usize; n];
            let mut id = 0u64;
            let mut t = 0u64;
            while done.iter().any(|&d| d < ROUNDS) {
                for (c, &port) in ports.iter().enumerate() {
                    if !pending[c] && done[c] < ROUNDS {
                        id += 1;
                        if l2.request(t, port, MemReq::read_line(id, 0x3000)) {
                            pending[c] = true;
                            issued_at[c] = t;
                        }
                    }
                }
                l2.tick(t);
                t += 1;
                for (c, &port) in ports.iter().enumerate() {
                    if pending[c] && l2.pop_response(t, port).is_some() {
                        pending[c] = false;
                        done[c] += 1;
                    }
                    if pending[c] {
                        assert!(
                            t - issued_at[c] < max_wait,
                            "port {port} starved among {n} clients: outstanding {} cycles",
                            t - issued_at[c]
                        );
                    }
                }
            }
            let banks_per_block = l2.geometry().banks() / l2.geometry().blocks();
            for (b, (h, m)) in l2.bank_stats().iter().enumerate() {
                if b >= banks_per_block {
                    assert_eq!((*h, *m), (0, 0), "bank {b} outside block 0 saw traffic");
                }
            }
        }
    }

    #[test]
    fn shared_mode_stripes_across_banks() {
        let mut l2 = SecondarySystem::new(MemConfig::prototype());
        for i in 0..32u64 {
            let t = i * 500;
            l2.request(t, 0, MemReq::read_line(i, i * 64));
            run_until_resp(&mut l2, 0, t, 400);
        }
        let used = l2.bank_stats().iter().filter(|(h, m)| h + m > 0).count();
        assert_eq!(used, 16, "consecutive lines stripe across all banks");
    }
}
