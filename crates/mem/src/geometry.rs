//! Computed OCN geometry for N-core dies.
//!
//! The prototype die (§2, §3.6) is one **block**: a 4×10 OCN slab
//! whose two middle columns hold sixteen NUCA banks (two columns of
//! eight, rows 1..=8) and whose edge columns expose ten client ports
//! each — west ports 0..10 for the DTs, east ports 10..20 for the ITs
//! — shared by the die's two cores (core 0 on port rows 0..5 of each
//! side, core 1 on rows 5..10).
//!
//! [`OcnGeometry`] scales that die to N ∈ 1..=16 cores by **tiling
//! blocks vertically**: `blocks = ⌈N/2⌉`, the mesh grows to
//! `10·blocks` rows (still 4 columns), and each block carries its own
//! sixteen banks and twenty ports. Core `k` lives in block `k/2`,
//! taking the block-local port slice core `k%2` takes on the
//! prototype die, and its routing tables stripe over **its own
//! block's** banks in the same ascending order the prototype uses.
//!
//! Two consequences carry the whole correctness story:
//!
//! * **N=1 and N=2 reduce to the prototype.** One block, rows 0..10,
//!   banks 0..16, ports 0..20, and the per-core port slices equal the
//!   hand-written `SOLO`/`for_core` maps this module replaced — so
//!   every existing bit-identity anchor (solo vs. one-core chip,
//!   dual-core baselines) is untouched by construction, not by luck.
//! * **Every slot is a pure translation of a prototype slot.** The
//!   mesh's wormhole routing, per-router round-robin arbitration, and
//!   bank timing are all invariant under shifting a traffic pattern
//!   by whole blocks (`+10·b` rows moves sources, destinations, and
//!   every intermediate router together; no routing decision, credit
//!   check, or arbitration order can tell). So an even slot of any
//!   die behaves cycle-for-cycle like prototype core 0 and an odd
//!   slot like prototype core 1 — the property
//!   `tests/chip_equivalence.rs` pins for every slot of 2/4/8-core
//!   dies.
//!
//! Contention is therefore *intra-block*: the two cores of a block
//! share its banks exactly as the prototype pair does, while separate
//! blocks are disjoint timing domains on one die. Aggregate
//! bank-conflict pressure grows with the number of populated blocks —
//! the monotone scaling curve `chipsim` gates.

use std::ops::Range;

use trips_micronet::Coord;

/// Rows per block: the prototype's 10-row OCN slab.
pub const BLOCK_ROWS: u8 = 10;
/// Client ports per block side (west = DT-side, east = IT-side).
pub const BLOCK_SIDE_PORTS: usize = BLOCK_ROWS as usize;
/// Cores per block: the prototype die pairs two cores on one slab.
pub const CORES_PER_BLOCK: usize = 2;
/// Largest die the geometry (and the OCN tag space) supports.
pub const MAX_CORES: usize = 16;

/// The OCN/NUCA floorplan of an N-core die, derived entirely from the
/// core count and the per-block bank count (16 on the prototype).
///
/// All coordinates follow the prototype convention: banks in mesh
/// columns 1..=2 of their block, client ports on columns 0 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcnGeometry {
    ncores: usize,
    blocks: usize,
    banks_per_block: usize,
}

impl OcnGeometry {
    /// Geometry of an `ncores`-core die with the prototype's sixteen
    /// banks per block.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ncores <= 16`.
    pub fn for_cores(ncores: usize) -> OcnGeometry {
        OcnGeometry::with_banks(ncores, 16)
    }

    /// Geometry with a non-prototype per-block bank count (the
    /// `memsweep`-style single-block experiments). Banks fill the two
    /// middle columns bottom-up, eight per column, so
    /// `banks_per_block <= 16`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ncores <= 16` and
    /// `1 <= banks_per_block <= 16`.
    pub fn with_banks(ncores: usize, banks_per_block: usize) -> OcnGeometry {
        assert!(
            (1..=MAX_CORES).contains(&ncores),
            "a die carries 1..={MAX_CORES} cores, not {ncores}"
        );
        assert!(
            (1..=16).contains(&banks_per_block),
            "a block holds 1..=16 banks, not {banks_per_block}"
        );
        OcnGeometry { ncores, blocks: ncores.div_ceil(CORES_PER_BLOCK), banks_per_block }
    }

    /// Cores on the die.
    pub fn ncores(&self) -> usize {
        self.ncores
    }

    /// Prototype-sized blocks tiled vertically (`⌈ncores/2⌉`).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Mesh rows (`10·blocks`).
    pub fn rows(&self) -> u8 {
        BLOCK_ROWS * self.blocks as u8
    }

    /// Mesh columns — always the prototype's four.
    pub fn cols(&self) -> u8 {
        4
    }

    /// Total NUCA banks on the die.
    pub fn banks(&self) -> usize {
        self.banks_per_block * self.blocks
    }

    /// Total client ports (`20·blocks`; west side first).
    pub fn ports(&self) -> usize {
        2 * BLOCK_SIDE_PORTS * self.blocks
    }

    /// Ports on the west (DT-side) edge column; ports `0..west_ports`
    /// sit on column 0, the rest on column 3.
    pub fn west_ports(&self) -> usize {
        BLOCK_SIDE_PORTS * self.blocks
    }

    /// The block core `k` lives in.
    pub fn core_block(&self, k: usize) -> usize {
        k / CORES_PER_BLOCK
    }

    /// First west-side port of core `k`'s DT slice (the prototype's
    /// `dt_base`: 0 for an even slot, 5 for an odd one, plus the
    /// block's ten-port stride).
    pub fn core_dt_base(&self, k: usize) -> usize {
        assert!(k < self.ncores, "core {k} of {}", self.ncores);
        BLOCK_SIDE_PORTS * self.core_block(k) + 5 * (k % CORES_PER_BLOCK)
    }

    /// First east-side port of core `k`'s IT slice.
    pub fn core_it_base(&self, k: usize) -> usize {
        self.west_ports() + self.core_dt_base(k)
    }

    /// The bank indices core `k`'s routing table stripes over — its
    /// own block's banks, ascending, exactly the prototype's table
    /// order.
    pub fn core_bank_table(&self, k: usize) -> Range<usize> {
        self.block_banks(self.core_block(k))
    }

    /// Bank indices of block `b`.
    pub fn block_banks(&self, b: usize) -> Range<usize> {
        b * self.banks_per_block..(b + 1) * self.banks_per_block
    }

    /// Mesh coordinate of bank `i`: two columns of eight in its
    /// block's rows 1..=8 (the prototype layout, shifted by whole
    /// blocks).
    pub fn bank_coord(&self, i: usize) -> Coord {
        let (b, w) = (i / self.banks_per_block, i % self.banks_per_block);
        Coord { row: BLOCK_ROWS * b as u8 + 1 + (w % 8) as u8, col: 1 + (w / 8) as u8 }
    }

    /// Inverts [`OcnGeometry::bank_coord`].
    pub fn bank_index(&self, c: Coord) -> usize {
        let b = (c.row / BLOCK_ROWS) as usize;
        let local = (c.row % BLOCK_ROWS) as usize - 1 + (c.col as usize - 1) * 8;
        b * self.banks_per_block + local
    }

    /// Mesh coordinate of client port `p`: west ports on column 0 at
    /// row `p`, east ports on column 3 at row `p - west_ports`.
    pub fn port_coord(&self, p: usize) -> Coord {
        let w = self.west_ports();
        if p < w {
            Coord { row: p as u8, col: 0 }
        } else {
            Coord { row: (p - w) as u8, col: self.cols() - 1 }
        }
    }

    /// The block port `p` belongs to.
    pub fn port_block(&self, p: usize) -> usize {
        let w = self.west_ports();
        (if p < w { p } else { p - w }) / BLOCK_SIDE_PORTS
    }

    /// Whether `p` is a west-side (DT) port.
    pub fn is_west_port(&self, p: usize) -> bool {
        p < self.west_ports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_and_two_core_dies_are_the_prototype_block() {
        for n in [1, 2] {
            let g = OcnGeometry::for_cores(n);
            assert_eq!(g.blocks(), 1);
            assert_eq!((g.rows(), g.cols()), (10, 4));
            assert_eq!(g.banks(), 16);
            assert_eq!((g.ports(), g.west_ports()), (20, 10));
            // The hand-written maps this geometry replaced: SOLO was
            // {dt_base: 0, it_base: 10}; core 1 was {dt_base: 5,
            // it_base: 15}; both tables striped banks 0..16.
            assert_eq!((g.core_dt_base(0), g.core_it_base(0)), (0, 10));
            assert_eq!(g.core_bank_table(0), 0..16);
            if n == 2 {
                assert_eq!((g.core_dt_base(1), g.core_it_base(1)), (5, 15));
                assert_eq!(g.core_bank_table(1), 0..16);
            }
            // Prototype coordinates, verbatim.
            for i in 0..16 {
                assert_eq!(
                    g.bank_coord(i),
                    Coord { row: 1 + (i % 8) as u8, col: 1 + (i / 8) as u8 }
                );
                assert_eq!(g.bank_index(g.bank_coord(i)), i);
            }
            for p in 0..20 {
                let side = if p < 10 { 0 } else { 3 };
                assert_eq!(g.port_coord(p), Coord { row: (p % 10) as u8, col: side });
            }
        }
    }

    #[test]
    fn slots_are_block_translations_of_the_prototype_slots() {
        // Core k's port rows and bank rows are core (k%2)'s prototype
        // rows shifted by 10·(k/2) — the translation invariance the
        // slot bit-identity tests rest on.
        let proto = OcnGeometry::for_cores(2);
        for n in [4, 8, 16] {
            let g = OcnGeometry::for_cores(n);
            assert_eq!(g.blocks(), n / 2);
            assert_eq!(g.rows() as usize, 10 * n / 2);
            assert_eq!(g.banks(), 16 * n / 2);
            for k in 0..n {
                let (b, p) = (g.core_block(k), k % 2);
                let shift = 10 * b as u8;
                // DT slice: same column, rows shifted by the block.
                for d in 0..4 {
                    let got = g.port_coord(g.core_dt_base(k) + d);
                    let want = proto.port_coord(proto.core_dt_base(p) + d);
                    assert_eq!(got, Coord { row: want.row + shift, col: want.col });
                }
                for i in 0..5 {
                    let got = g.port_coord(g.core_it_base(k) + i);
                    let want = proto.port_coord(proto.core_it_base(p) + i);
                    assert_eq!(got, Coord { row: want.row + shift, col: want.col });
                }
                // Bank table: the block's own banks, whose coords are
                // the prototype banks' shifted by the block.
                let table: Vec<Coord> = g.core_bank_table(k).map(|i| g.bank_coord(i)).collect();
                for (w, c) in table.iter().enumerate() {
                    let want = proto.bank_coord(w);
                    assert_eq!(*c, Coord { row: want.row + shift, col: want.col });
                }
            }
        }
    }

    #[test]
    fn port_and_bank_indexing_round_trips() {
        for n in 1..=16 {
            let g = OcnGeometry::for_cores(n);
            for i in 0..g.banks() {
                assert_eq!(g.bank_index(g.bank_coord(i)), i);
            }
            // Port slices of distinct cores never overlap.
            let mut owner = vec![None; g.ports()];
            for k in 0..n {
                for d in 0..4 {
                    let p = g.core_dt_base(k) + d;
                    assert!(g.is_west_port(p));
                    assert_eq!(owner[p].replace(k), None, "port {p} double-owned");
                    assert_eq!(g.port_block(p), g.core_block(k));
                }
                for i in 0..5 {
                    let p = g.core_it_base(k) + i;
                    assert!(!g.is_west_port(p));
                    assert_eq!(owner[p].replace(k), None, "port {p} double-owned");
                    assert_eq!(g.port_block(p), g.core_block(k));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=16 cores")]
    fn rejects_oversized_dies() {
        OcnGeometry::for_cores(17);
    }
}
