//! # trips-harness — self-contained test and bench support
//!
//! The build environment for this repository has no access to
//! crates.io, so the usual `rand`/`proptest`/`criterion` stack is
//! unavailable. This crate supplies the two pieces the workspace
//! actually needs, with zero dependencies:
//!
//! * [`Rng`] — a small, fast, seeded PRNG (SplitMix64) for
//!   deterministic randomized tests;
//! * [`Criterion`] — a minimal wall-clock micro-benchmark harness with
//!   a Criterion-compatible surface (`bench_function`, `iter`,
//!   `sample_size`, and the [`criterion_group!`]/[`criterion_main!`]
//!   macros) so the `harness = false` bench targets keep their shape;
//! * [`parallel_map`] — a scoped-thread worker pool (in place of
//!   `rayon`) that shards independent simulator runs across host
//!   cores while preserving input order in the results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// A seeded SplitMix64 PRNG.
///
/// SplitMix64 passes BigCrush, needs two lines of state transition,
/// and is more than random enough for test-input generation. The same
/// seed always yields the same stream on every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `u8` in `[lo, hi)`.
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u8
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add((self.next_u64() % lo.abs_diff(hi)) as i64)
    }

    /// A uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.range_u64(0, den) < num
    }
}

/// Timing results of one benchmark: wall-clock per iteration.
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// A minimal stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (compatibility shim).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `f` as a named benchmark: one warm-up sample, then
    /// `sample_size` timed samples, printing mean/min/max per
    /// iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed_ns: 0.0 };
        // Warm-up and iteration-count calibration: grow the iteration
        // count until one sample takes ≥ ~5 ms.
        loop {
            b.elapsed_ns = 0.0;
            f(&mut b);
            if b.elapsed_ns >= 5_000_000.0 || b.iters >= 1 << 20 {
                break;
            }
            b.iters *= 4;
        }
        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0.0;
            f(&mut b);
            means.push(b.elapsed_ns / b.iters as f64);
        }
        let s = Sample {
            mean_ns: means.iter().sum::<f64>() / means.len() as f64,
            min_ns: means.iter().cloned().fold(f64::INFINITY, f64::min),
            max_ns: means.iter().cloned().fold(0.0, f64::max),
        };
        println!(
            "{name:<40} {:>12} {:>12} {:>12}   ({} samples x {} iters)",
            fmt_ns(s.mean_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
            self.sample_size,
            b.iters,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

/// Worker threads to use for [`parallel_map`]: the `TRIPS_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism (1 if that cannot be determined).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("TRIPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` scoped workers and
/// returns the results **in input order**.
///
/// This is the dependency-free stand-in for `rayon`'s `par_iter().map()`:
/// a shared atomic cursor hands out work items so long-running items
/// do not serialize behind a static partition. `threads == 1` (or a
/// single item) degrades to a plain serial map with no thread or lock
/// overhead, so callers can use one code path for both modes.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    // Hand items out through Options so workers can take ownership
    // without consuming the Vec across threads.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(slots.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    return;
                }
                let item = slots[i].lock().expect("slot poisoned").take().expect("item taken once");
                let r = f(item);
                results.lock().expect("results poisoned").push((i, r));
            });
        }
    });
    let mut out = results.into_inner().expect("results poisoned");
    out.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(out.len(), slots.len());
    out.into_iter().map(|(_, r)| r).collect()
}

/// Criterion-compatible group definition. Both the simple
/// `criterion_group!(name, target, ...)` and the configured
/// `criterion_group! { name = ..; config = ..; targets = .. }` forms
/// are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Criterion-compatible main: runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            // Uneven per-item work so completion order differs from
            // input order when threads > 1.
            let out = parallel_map(items.clone(), threads, |v| {
                if v % 3 == 0 {
                    std::thread::yield_now();
                }
                v * 2
            });
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u64>::new(), 8, |v| v), Vec::<u64>::new());
        assert_eq!(parallel_map(vec![9u64], 8, |v| v + 1), vec![10]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn rng_covers_small_ranges() {
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
