#!/usr/bin/env python3
"""CI perf-regression gate over simperf output.

Compares a fresh ``simperf --smoke`` run against the checked-in
baseline (``BENCH_simperf.json``) and fails when:

* any workload's simulated cycle count differs from the baseline and
  the PR did not update the baseline file itself (``sim_cycles`` is a
  pure function of the model, so an unacknowledged change means the
  default perfect-L2 configuration silently changed behaviour); or
* the workload name sets differ without a baseline update (a workload
  added or removed in only one file would otherwise dodge the
  per-workload check); or
* the suite's aggregate host throughput (total simulated cycles per
  total host-second) regressed by more than the tolerance
  (default 15%), baseline update or not; or
* ``--min-throughput`` is given and the current aggregate throughput
  is below that absolute floor. The floor is the ratchet: tolerance
  is relative to whatever baseline is checked in, so a slow baseline
  would silently lower the bar — the floor cannot be moved by a
  baseline update, only by editing the CI workflow.

Usage:
    compare_simperf.py BASELINE CURRENT [--baseline-updated]
                       [--tolerance 0.15] [--label NAME]
                       [--min-throughput CYC_PER_SEC]

The same gate also covers ``BENCH_chipsim.json`` (the dual-core chip
contention benchmark shares the ``workloads[].{name, sim_cycles}`` row
shape); ``--label`` names the suite in the output so interleaved gate
runs stay readable. Host time per row is read from ``wall_secs``
(chipsim: whole-pairing wall seconds; simperf: the gated run's host
seconds) with ``gated_secs`` accepted as a fallback so baselines
recorded before simperf's rename still compare; either denominates
that file's throughput.

``--baseline-updated`` tells the gate that the change under test also
updates the baseline file; simulated-cycle differences and name-set
changes are then accepted (they are exactly what the update records),
while the throughput checks still apply.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {w["name"]: w for w in doc["workloads"]}
    if not rows:
        sys.exit(f"{path}: no workloads recorded")
    return rows


def host_secs(row):
    """Host seconds for one row: ``wall_secs``, falling back to
    ``gated_secs`` (pre-rename simperf baselines)."""
    secs = row.get("wall_secs", row.get("gated_secs"))
    if secs is None:
        sys.exit(f"workload {row.get('name')!r}: no wall_secs/gated_secs field")
    return secs


def aggregate_throughput(rows):
    cycles = sum(w["sim_cycles"] for w in rows.values())
    secs = sum(host_secs(w) for w in rows.values())
    if secs <= 0:
        sys.exit("non-positive total host time in simperf output")
    return cycles / secs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--baseline-updated", action="store_true")
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--label", default="simperf")
    ap.add_argument(
        "--min-throughput",
        type=float,
        default=None,
        metavar="CYC_PER_SEC",
        help="absolute floor on current aggregate sim-cycles/host-sec, "
        "enforced regardless of baseline updates",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    errors = []

    missing = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    if (missing or added) and not args.baseline_updated:
        errors.append(
            f"workload set changed without a baseline update "
            f"(missing: {missing or 'none'}, added: {added or 'none'})"
        )

    for name in sorted(set(base) & set(cur)):
        b, c = base[name]["sim_cycles"], cur[name]["sim_cycles"]
        if b != c:
            msg = f"{name}: sim_cycles {b} -> {c}"
            if args.baseline_updated:
                print(f"note: {msg} (accepted: baseline updated in this change)")
            else:
                errors.append(
                    f"{msg} — simulated behaviour changed; if intentional, "
                    f"regenerate and commit the baseline in the same change"
                )

    base_tp = aggregate_throughput(base)
    cur_tp = aggregate_throughput(cur)
    ratio = cur_tp / base_tp
    print(
        f"[{args.label}] host throughput: baseline {base_tp:,.0f} cyc/s, "
        f"current {cur_tp:,.0f} cyc/s ({ratio:.2%} of baseline)"
    )
    if ratio < 1.0 - args.tolerance:
        errors.append(
            f"host throughput regressed to {ratio:.2%} of baseline "
            f"(gate: {1.0 - args.tolerance:.0%})"
        )
    if args.min_throughput is not None and cur_tp < args.min_throughput:
        errors.append(
            f"host throughput {cur_tp:,.0f} cyc/s is below the absolute floor "
            f"{args.min_throughput:,.0f} cyc/s (the ratchet: fix the regression "
            f"or raise the floor deliberately in the workflow)"
        )

    if errors:
        print(f"\n[{args.label}] perf gate FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        sys.exit(1)
    print(f"[{args.label}] perf gate passed")


if __name__ == "__main__":
    main()
