#!/usr/bin/env bash
# Regenerate every checked-in BENCH_*.json perf baseline, in the same
# --smoke configuration the CI perf gate reruns, then show what moved.
#
# Run this (and commit the diff) in any change that intentionally
# shifts simulated cycle counts — the gate fails unacknowledged
# sim_cycles drift unless the baseline is updated in the same change.
#
# Usage: scripts/update_baselines.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p trips-bench

echo "== simperf (single-core suite) =="
./target/release/simperf --smoke

echo
echo "== chipsim (dual-core shared-NUCA pairings) =="
./target/release/chipsim --smoke

echo
echo "== chipsim --shared (coherent shared-memory suite, full dual+quad table) =="
# The coherence gate reruns the full table (not --smoke): the rows are
# a few thousand simulated cycles each, so full costs nothing and the
# quad-die rows carry most of the invalidation traffic worth pinning.
./target/release/chipsim --shared

echo
echo "== paretosweep (geometry lattice, area vs IPC) =="
./target/release/paretosweep --smoke

echo
echo "== baseline changes =="
git --no-pager diff --stat -- 'BENCH_*.json'
if git diff --quiet -- 'BENCH_*.json'; then
    echo "(no baseline moved — nothing to commit)"
else
    echo
    echo "Review the numbers above, then: git add BENCH_*.json"
fi
